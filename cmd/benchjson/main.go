// Command benchjson runs the key performance benchmarks of the repository
// and writes a machine-readable JSON report (ns/op, bytes/op, allocs/op,
// the fast-vs-reference pipeline speedup plus its measured accuracy, the
// multi-core scaling sweep, and the spectrum service's serving benchmark),
// extending the performance trajectory started in BENCH_PR2.json:
//
//	benchjson [-out BENCH_PR10.json] [-quick] [-smoke] [-procs 1,2,4,all] [-farm-procs 1,2,4] [-cluster-nodes 1,2,4]
//
// The headline numbers are the Figure-2 C_l pipeline with the full fast
// engine (fast evolution + shared spherical-Bessel tables + coarse-to-fine
// k refinement) against the exact reference pipeline at identical
// LMaxCl/NK settings, the PR 6 ablation grid on the dense multipole
// request — spline-in-l projection on/off crossed with lockstep k-mode
// batch sizes 1/4/8, plus each established fast ingredient individually
// toggled off, with per-column wallclock, speedup and accuracy — the
// GOMAXPROCS scaling sweep of that pipeline — the
// repo's analogue of the paper's Figure-1 scaling curve: wallclock,
// speedup and parallel efficiency per processor count, with the spectra
// checked bitwise-identical across counts — the single-mode evolution
// speedup of the fast evolution engine, the per-mode steady-state
// allocation counts the worker arenas are budgeted for, the kernel-level
// microbenchmarks behind them, and the daemon's serving numbers:
// cold-miss latency, cache-hit latency, and sustained requests/sec at 32
// concurrent clients against an in-process plingerd service. The PR 7
// fault-recovery column reruns one sweep with a worker killed
// mid-assignment under the fault-tolerant master and reports the recovery
// overhead, asserting the recovered spectra bitwise-identical. The PR 9
// farm column times the same cold sweep over freshly spawned plingerw
// fleets per worker-process count (-farm-procs), every point's spectra
// bitwise-checked against the in-process pool. The PR 10 cluster column
// (-cluster-nodes) serves the same hot key from a sharded cache fleet of
// 1/2/4 in-process daemons peered into one rendezvous ring and reports
// per-node-count throughput, p99, hit ratio, cross-node peer serves, and
// the total sweeps the whole fleet paid for the key.
//
// -quick shrinks the pipeline settings; -smoke shrinks everything to a
// few seconds of total runtime, runs the scaling sweep at GOMAXPROCS 1
// and 2, asserts speedup > 1 on multi-core hosts, and is wired into CI
// (make bench-smoke) so the report path cannot rot between real
// bench-json runs.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"plinger"
	"plinger/internal/cluster"
	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/farm"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/faultmp"
	"plinger/internal/obs"
	"plinger/internal/recomb"
	"plinger/internal/serve"
	"plinger/internal/specfunc"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

// Entry is one benchmark row.
type Entry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// ServiceBench is the daemon benchmark: what one plingerd process delivers
// at the report's default product settings.
type ServiceBench struct {
	// ColdMissMS is the client-observed latency of a cold request against
	// a warm model: a full sweep on a fresh cache key, the daemon's
	// steady-state cold path (the model registry amortizes the per-
	// cosmology build over its lifetime; FirstRequestMS reports it).
	ColdMissMS float64 `json:"cold_miss_ms"`
	// ColdMiss is the cold-path latency distribution over the fresh-key
	// runs, read off the same sharded histogram type the daemon's /metrics
	// exposes (bucket-interpolated quantiles, exact max).
	ColdMiss serve.LatencyStats `json:"cold_miss_quantiles"`
	// FirstRequestMS is the very first request of the process: the
	// one-time model build (background, recombination, flattened tables)
	// plus the sweep.
	FirstRequestMS float64 `json:"first_request_ms"`
	// HitUnloaded is a single-client run against a hot cache; Sustained32
	// is the 32-concurrent-client throughput run.
	HitUnloaded *serve.LoadReport `json:"hit_unloaded"`
	Sustained32 *serve.LoadReport `json:"sustained_32_clients"`
	// Stats is the daemon's own view after the runs.
	Stats serve.Stats `json:"stats"`
}

// ScalingPoint is one row of the multi-core sweep — the repo's analogue
// of a point on the paper's Figure-1 curve: the full fast C_l pipeline at
// a given GOMAXPROCS (and equal worker count), best-of-N wallclock,
// speedup over the first swept count (1 unless -procs overrides it) and
// the resulting parallel efficiency, corrected for the baseline count.
type ScalingPoint struct {
	Procs      int     `json:"procs"`
	WallMS     float64 `json:"wall_ms"`
	Speedup    float64 `json:"speedup_vs_base"`
	Efficiency float64 `json:"parallel_efficiency"`
}

// AblationRow is one column of the PR 6 ablation grid: the fast C_l
// pipeline on the dense multipole request with one combination of the
// fast ingredients, timed best-of-3 on a warm model.
type AblationRow struct {
	Name       string  `json:"name"`
	FastLOS    bool    `json:"fastlos"`
	KRefine    int     `json:"krefine"`
	FastEvolve bool    `json:"fastevolve"`
	LSpline    bool    `json:"lspline"`
	KBatch     int     `json:"kbatch"`
	WallMS     float64 `json:"wall_ms"`
	// Speedup is relative to the grid's PR 5 fast baseline — FastLOS +
	// KRefine + FastEvolve with LSpline off and KBatch 1 — on the same
	// request.
	Speedup float64 `json:"speedup_vs_pr5_fast"`
	// MaxRelCl is the column's worst relative C_l deviation from that
	// same baseline. The k quadrature (NK, KRefine) is held fixed across
	// the lspline/kbatch rows, so those expose pure projection and
	// batching error at this resolution; the sub-1e-3 projection
	// contract itself is pinned on a converged k grid by the golden
	// tests (at production NK the exact spectrum carries percent-level
	// quadrature aliasing that no projection scheme can see).
	MaxRelCl float64 `json:"max_rel_cl_vs_pr5_fast"`
}

// FaultRecovery is the PR 7 robustness number: the same mode sweep run
// clean and with one worker killed mid-assignment under the fault-tolerant
// master, with the recovered spectra checked bitwise-identical against the
// undisturbed run. The overhead column is the price of losing (and
// re-running) the dead worker's in-flight block.
type FaultRecovery struct {
	Workers     int     `json:"workers"`
	Modes       int     `json:"modes"`
	CleanWallMS float64 `json:"clean_wall_ms"`
	KillWallMS  float64 `json:"kill_wall_ms"`
	// OverheadX is kill wallclock over clean wallclock.
	OverheadX      float64 `json:"recovery_overhead_x"`
	WorkerFailures int     `json:"worker_failures"`
	Reassignments  int     `json:"reassignments"`
	LocalModes     int     `json:"local_modes"`
	Bitwise        bool    `json:"bitwise_identical"`
}

// ClusterPoint is one row of the PR 10 sharded-fleet serving column: a
// fleet of Nodes in-process plingerd daemons peered into one rendezvous
// ring, hammered on the hot default key with clients spread round-robin
// across the nodes. FleetSweeps is the whole fleet's sweep count for that
// key — staying at 1 as nodes are added is the sharding contract (each
// key has one owner; everyone else forwards, then caches). PeerServed
// counts cross-node cache hits (the warm-up forwards).
type ClusterPoint struct {
	Nodes       int     `json:"nodes"`
	RequestsSec float64 `json:"requests_per_sec"`
	Speedup     float64 `json:"speedup_vs_one_node"`
	P99MS       float64 `json:"p99_ms"`
	HitRatio    float64 `json:"hit_ratio"`
	PeerServed  int64   `json:"peer_served"`
	FleetSweeps uint64  `json:"fleet_sweeps"`
}

// FarmPoint is one row of the PR 9 multi-process scaling column: the same
// cold sweep served by a supervised fleet of plingerw worker processes,
// per process count, with the spectra checked bitwise against the
// in-process pool. "Cold" means the worker processes are freshly spawned
// for each point — their model caches and arenas start empty — so the
// column prices what a new fleet actually delivers.
type FarmPoint struct {
	WorkerProcs int     `json:"worker_procs"`
	WallMS      float64 `json:"cold_sweep_wall_ms"`
	Speedup     float64 `json:"speedup_vs_one_proc"`
	Bitwise     bool    `json:"cl_bitwise_vs_pool"`
}

// Report is the written document.
type Report struct {
	Date          string  `json:"date"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	NumCPU        int     `json:"num_cpu"`
	LMaxCl        int     `json:"lmax_cl"`
	NK            int     `json:"nk"`
	KRefine       int     `json:"krefine"`
	Entries       []Entry `json:"benchmarks"`
	SpeedupLOS    float64 `json:"speedup_los_pipeline"`
	SpeedupTheta  float64 `json:"speedup_theta_projection"`
	SpeedupBessel float64 `json:"speedup_bessel_kernel"`
	MaxRelClErr   float64 `json:"max_rel_cl_err_fast_vs_reference"`

	// The PR 4 fast-evolution numbers: FastEvolve vs reference at equal
	// RTol on one brute-style full-hierarchy mode (the paper's unit of
	// work) and on one line-of-sight production mode.
	SpeedupEvolve    float64 `json:"speedup_evolve_single_mode"`
	SpeedupEvolveLOS float64 `json:"speedup_evolve_los_mode"`

	// The PR 5 scaling numbers: the full fast pipeline per processor
	// count, with the spectra verified bitwise-identical across counts
	// (the dispatch determinism contract — the curve compares runs whose
	// outputs are exactly equal). ClBitwiseAcrossProcs is omitted when
	// the sweep covered a single count and the cross-count comparison
	// was therefore vacuous (e.g. a single-core host).
	Scaling              []ScalingPoint `json:"scaling_sweep"`
	ClBitwiseAcrossProcs *bool          `json:"cl_bitwise_across_procs,omitempty"`

	// The PR 6 numbers: spline-in-l projection and lockstep k-mode
	// batching, ablated on the dense C_l request (every multipole from 2
	// to LMaxCl — the full curve of the paper's Figure 2, the request
	// the spline-in-l cut is built for). SpeedupFullFast is the full
	// fast pipeline (all five ingredients) over the PR 5 fast path.
	Ablation        []AblationRow `json:"ablation"`
	SpeedupFullFast float64       `json:"speedup_full_fast_vs_pr5_fast"`

	// The PR 7 number: wall time of a sweep that loses a worker
	// mid-assignment versus the clean run, recovered bitwise-identically.
	FaultRecovery *FaultRecovery `json:"fault_recovery"`

	// The PR 9 numbers: the cold C_l sweep over a supervised multi-process
	// plingerw farm, per worker-process count (-farm-procs), every point's
	// spectra bitwise-checked against the in-process pool.
	FarmScaling []FarmPoint `json:"farm_procs,omitempty"`

	// The PR 10 numbers: hot-key serving throughput of a sharded cache
	// fleet per in-process node count (-cluster-nodes), with the fleet's
	// total sweep count for the key — 1 at every fleet size when the
	// consistent-hash peering does its job.
	ClusterScaling []ClusterPoint `json:"cluster_nodes,omitempty"`

	// The PR 3 serving numbers.
	ServiceHitMS     float64       `json:"service_hit_ms"`
	ServiceMissMS    float64       `json:"service_miss_ms"`
	ServiceReqPerSec float64       `json:"service_req_per_sec_32_clients"`
	Service          *ServiceBench `json:"service"`
}

func run(name string, f func(b *testing.B)) Entry {
	r := testing.Benchmark(f)
	e := Entry{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Iterations:  r.N,
	}
	fmt.Printf("%-28s %14.0f ns/op %12d B/op %8d allocs/op (n=%d)\n",
		e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations)
	return e
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	var (
		out          = flag.String("out", "BENCH_PR10.json", "output file")
		quick        = flag.Bool("quick", false, "smaller pipeline settings (for smoke runs)")
		smoke        = flag.Bool("smoke", false, "tiny settings and short service runs: the CI exercise of the whole report path")
		procs        = flag.String("procs", "", "comma-separated GOMAXPROCS values for the scaling sweep ('all' = every core; default 1,2,4,all clamped to the machine)")
		farmProcs    = flag.String("farm-procs", "", "comma-separated plingerw process counts for the farm scaling column (default like -procs; 'skip' disables the column)")
		clusterNodes = flag.String("cluster-nodes", "", "comma-separated in-process node counts for the sharded-fleet serving column (default 1,2,4; smoke 1,2; 'skip' disables the column)")
	)
	flag.Parse()

	lmaxCl, nk, kRefine := 150, 130, 10
	if *quick {
		lmaxCl, nk = 60, 60
	}
	if *smoke {
		lmaxCl, nk = 40, 40
	}

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cm := core.NewModel(bg, th)

	// Record the EFFECTIVE refinement factor: ComputeSpectrum clamps the
	// request through SafeKRefine, and the report must describe the
	// configuration that actually ran.
	ksFine := spectra.ClGrid(lmaxCl, bg.Tau0(), nk)
	kRefine = spectra.SafeKRefine(kRefine, nk, ksFine[0], ksFine[len(ksFine)-1], th.TauRec())
	rep := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		LMaxCl:     lmaxCl, NK: nk, KRefine: kRefine,
	}

	// The two pipelines at identical settings, plus the accuracy of the
	// full fast path (FastEvolve + FastLOS + KRefine) against the
	// reference.
	refOpts := plinger.SpectrumOptions{LMaxCl: lmaxCl, NK: nk}
	fastOpts := refOpts
	fastOpts.FastLOS = true
	fastOpts.FastEvolve = true
	fastOpts.KRefine = kRefine
	refSpec, err := m.ComputeSpectrum(refOpts)
	if err != nil {
		log.Fatal(err)
	}
	fastSpec, err := m.ComputeSpectrum(fastOpts)
	if err != nil {
		log.Fatal(err)
	}
	for i := range refSpec.Cl {
		rel := math.Abs(fastSpec.Cl[i]-refSpec.Cl[i]) / refSpec.Cl[i]
		if rel > rep.MaxRelClErr {
			rep.MaxRelClErr = rel
		}
	}

	// The scaling sweep: the same fast pipeline across processor counts.
	// On a multi-core smoke run the GOMAXPROCS=2 point must beat the
	// single-processor one — the CI guard on the parallel path itself.
	procsList, err := parseProcs(*procs, *smoke)
	if err != nil {
		log.Fatal(err)
	}
	rep.Scaling, rep.ClBitwiseAcrossProcs, err = runScalingSweep(m, fastOpts, procsList)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%6s %12s %10s %12s\n", "procs", "wall [ms]", "speedup", "efficiency")
	for _, p := range rep.Scaling {
		fmt.Printf("%6d %12.1f %9.2fx %11.1f%%\n", p.Procs, p.WallMS, p.Speedup, 100*p.Efficiency)
	}
	if b := rep.ClBitwiseAcrossProcs; b != nil && !*b {
		log.Fatal("C_l not bitwise-identical across processor counts (dispatch determinism contract broken)")
	}
	if *smoke {
		if runtime.NumCPU() < 2 {
			fmt.Println("smoke speedup assertion skipped: single-core host")
		} else if n := len(rep.Scaling); n < 2 || rep.Scaling[n-1].Speedup <= 1.0 {
			log.Fatalf("smoke: GOMAXPROCS=2 speedup %.2fx not > 1.0", rep.Scaling[n-1].Speedup)
		}
	}

	eFast := run("fig2_los_fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ComputeSpectrum(fastOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	eRef := run("fig2_los_reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.ComputeSpectrum(refOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SpeedupLOS = eRef.NsPerOp / eFast.NsPerOp

	// Per-mode projection: exact recurrences vs kernel tables.
	mode, err := cm.Evolve(core.Params{K: 0.02, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true})
	if err != nil {
		log.Fatal(err)
	}
	tau0, tauRec := bg.Tau0(), th.TauRec()
	ls := spectra.DefaultLs(lmaxCl)

	// The fast evolution engine on single modes at equal RTol: the paper's
	// own unit of work (one brute-style mode carrying the full per-k
	// adaptive hierarchy) and the line-of-sight production mode the C_l
	// pipeline evolves. Measured the way a sweep worker runs them — one
	// warm core.Scratch arena threaded through every call — so the
	// allocs/op columns are the steady-state per-mode numbers the arena
	// budget tests enforce (the warm-up call also builds the flattened
	// tables outside the timed loop).
	kEv := 0.02
	if *smoke {
		kEv = 0.01
	}
	bruteMode := core.Params{K: kEv, LMax: spectra.PerKLMax(kEv, tau0, 1<<20), Gauge: core.Synchronous}
	losMode := core.Params{K: kEv, LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true}
	evolveScratch := core.NewScratch()
	evolveBench := func(name string, p core.Params) Entry {
		if _, err := cm.EvolveWith(p, evolveScratch); err != nil {
			log.Fatal(err)
		}
		return run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cm.EvolveWith(p, evolveScratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	fastBrute, fastLos := bruteMode, losMode
	fastBrute.FastEvolve = true
	fastLos.FastEvolve = true
	eEvRef := evolveBench("evolve_brute_reference", bruteMode)
	eEvFast := evolveBench("evolve_brute_fast", fastBrute)
	rep.SpeedupEvolve = eEvRef.NsPerOp / eEvFast.NsPerOp
	eEvLosRef := evolveBench("evolve_los_reference", losMode)
	eEvLosFast := evolveBench("evolve_los_fast", fastLos)
	rep.SpeedupEvolveLOS = eEvLosRef.NsPerOp / eEvLosFast.NsPerOp
	eThetaRef := run("theta_los_reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spectra.ThetaLOS(mode, lmaxCl, tau0, tauRec); err != nil {
				b.Fatal(err)
			}
		}
	})
	eThetaFast := run("theta_los_table", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := spectra.ThetaLOSFast(mode, ls, tau0, tauRec); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.SpeedupTheta = eThetaRef.NsPerOp / eThetaFast.NsPerOp

	// Kernel level: one recurrence array fill vs one table interpolation.
	eBesselRef := run("bessel_recurrence", func(b *testing.B) {
		var jl []float64
		x := 0.3
		for i := 0; i < b.N; i++ {
			jl = specfunc.SphericalBesselJArray(lmaxCl+1, x, jl)
			x += 1.7
			if x > 350 {
				x = 0.3
			}
		}
	})
	tbl := specfunc.SharedBesselTable(ls, 384, nil)
	row, _ := tbl.Row(ls[len(ls)-1])
	eBesselTab := run("bessel_table_eval", func(b *testing.B) {
		x := 0.3
		var acc float64
		for i := 0; i < b.N; i++ {
			j, jp, q := row.Eval(x)
			acc += j + jp + q
			x += 1.7
			if x > 350 {
				x = 0.3
			}
		}
		_ = acc
	})
	rep.SpeedupBessel = eBesselRef.NsPerOp / eBesselTab.NsPerOp

	rep.Entries = []Entry{eFast, eRef, eEvRef, eEvFast, eEvLosRef, eEvLosFast,
		eThetaRef, eThetaFast, eBesselRef, eBesselTab}

	// The PR 6 ablation grid on the dense request.
	rep.Ablation, rep.SpeedupFullFast, err = runAblation(m, lmaxCl, nk, kRefine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-24s %10s %9s %13s\n", "ablation", "wall [ms]", "speedup", "max rel C_l")
	for _, r := range rep.Ablation {
		fmt.Printf("%-24s %10.1f %8.2fx %13.3g\n", r.Name, r.WallMS, r.Speedup, r.MaxRelCl)
	}

	// The PR 7 fault-recovery column: the same sweep with and without one
	// injected worker kill. Smoke runs shrink the grid but keep the path —
	// CI proves on every run that a killed worker cannot change the bits.
	frModes := 40
	if *quick || *smoke {
		frModes = 12
	}
	rep.FaultRecovery, err = runFaultRecovery(cm, bg.Tau0(), lmaxCl, frModes)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.FaultRecovery.Bitwise {
		log.Fatal("recovered sweep not bitwise-identical to the clean run (fault-tolerance contract broken)")
	}
	fmt.Printf("\nfault recovery: clean %.1f ms, one worker killed %.1f ms (%.2fx), %d reassignments, bitwise ok\n",
		rep.FaultRecovery.CleanWallMS, rep.FaultRecovery.KillWallMS,
		rep.FaultRecovery.OverheadX, rep.FaultRecovery.Reassignments)

	// The PR 9 farm column: the same cold sweep over freshly spawned
	// plingerw fleets of increasing size, bitwise-checked against the
	// in-process fast spectrum computed above.
	if *farmProcs != "skip" {
		fpList, err := parseProcs(*farmProcs, *smoke)
		if err != nil {
			log.Fatal(err)
		}
		rep.FarmScaling, err = runFarmScaling(m, fastOpts, fastSpec, fpList)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%12s %16s %10s %9s\n", "worker procs", "cold wall [ms]", "speedup", "bitwise")
		for _, p := range rep.FarmScaling {
			fmt.Printf("%12d %16.1f %9.2fx %9v\n", p.WorkerProcs, p.WallMS, p.Speedup, p.Bitwise)
			if !p.Bitwise {
				log.Fatal("farm sweep not bitwise-identical to the in-process pool (determinism contract broken)")
			}
		}
	}

	// The serving benchmark: an in-process plingerd (real HTTP stack via
	// httptest) at the same product settings. Cold misses are timed on
	// distinct fresh keys, then a single-client run measures unloaded hit
	// latency and a 32-client run the sustained throughput.
	svcDur := 5 * time.Second
	if *quick {
		svcDur = 2 * time.Second
	}
	if *smoke {
		svcDur = time.Second
	}
	coldN := 8
	if *quick {
		coldN = 5
	}
	if *smoke {
		coldN = 3
	}
	sb, err := runServiceBench(lmaxCl, nk, kRefine, coldN, svcDur)
	if err != nil {
		log.Fatal(err)
	}
	rep.Service = sb
	rep.ServiceHitMS = sb.HitUnloaded.HitMeanMS
	rep.ServiceMissMS = sb.ColdMissMS
	rep.ServiceReqPerSec = sb.Sustained32.RequestsSec

	// The PR 10 cluster column: the same hot-key serving run against a
	// sharded fleet of increasing size, clients round-robin across nodes.
	if *clusterNodes != "skip" {
		cnList, err := parseNodes(*clusterNodes, *smoke)
		if err != nil {
			log.Fatal(err)
		}
		rep.ClusterScaling, err = runClusterBench(lmaxCl, nk, kRefine, cnList, svcDur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%6s %12s %10s %10s %10s %12s %13s\n",
			"nodes", "req/s", "speedup", "p99 [ms]", "hit ratio", "peer served", "fleet sweeps")
		for _, p := range rep.ClusterScaling {
			fmt.Printf("%6d %12.0f %9.2fx %10.2f %10.3f %12d %13d\n",
				p.Nodes, p.RequestsSec, p.Speedup, p.P99MS, p.HitRatio, p.PeerServed, p.FleetSweeps)
			if p.FleetSweeps != 1 {
				log.Fatalf("cluster with %d nodes paid %d sweeps for one key, want 1 (sharding contract broken)", p.Nodes, p.FleetSweeps)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline speedup %.2fx, projection speedup %.2fx, kernel speedup %.2fx\n",
		rep.SpeedupLOS, rep.SpeedupTheta, rep.SpeedupBessel)
	fmt.Printf("evolution speedup: %.2fx single brute mode, %.2fx los mode\n",
		rep.SpeedupEvolve, rep.SpeedupEvolveLOS)
	fmt.Printf("max relative C_l deviation fast vs reference: %.3g\n", rep.MaxRelClErr)
	fmt.Printf("full fast pipeline vs PR 5 fast path (dense request): %.2fx\n", rep.SpeedupFullFast)
	fmt.Printf("service: hit %.3g ms, cold miss %.3g ms (p50 %.3g, p95 %.3g, p99 %.3g, max %.3g), %.0f req/s at %d clients\n",
		rep.ServiceHitMS, rep.ServiceMissMS,
		sb.ColdMiss.P50MS, sb.ColdMiss.P95MS, sb.ColdMiss.P99MS, sb.ColdMiss.MaxMS,
		rep.ServiceReqPerSec, sb.Sustained32.Clients)
	fmt.Printf("wrote %s\n", *out)
}

// parseProcs resolves the -procs flag: an explicit comma list ("all" or 0
// meaning every core), or the default 1,2,4,all clamped to the machine —
// so the report never claims parallel speedup the hardware cannot deliver.
// Smoke runs default to {1,2} regardless of core count: the point there is
// exercising the parallel path, not measuring the full curve.
func parseProcs(spec string, smoke bool) ([]int, error) {
	ncpu := runtime.NumCPU()
	var list []int
	if spec == "" {
		if smoke {
			list = []int{1, 2}
		} else {
			for _, np := range []int{1, 2, 4, ncpu} {
				if np <= ncpu {
					list = append(list, np)
				}
			}
		}
	} else {
		for _, s := range strings.Split(spec, ",") {
			s = strings.TrimSpace(s)
			if s == "all" || s == "0" {
				list = append(list, ncpu)
				continue
			}
			np, err := strconv.Atoi(s)
			if err != nil || np < 1 {
				return nil, fmt.Errorf("bad procs value %q", s)
			}
			list = append(list, np)
		}
	}
	sort.Ints(list)
	out := list[:0]
	for i, np := range list {
		if i == 0 || np != list[i-1] {
			out = append(out, np)
		}
	}
	return out, nil
}

// parseNodes resolves the -cluster-nodes flag: an explicit comma list, or
// the default 1,2,4 (smoke: 1,2). Unlike the processor sweeps, the counts
// are not clamped to the core count — the nodes are in-process daemons
// sharing one machine; the column measures the sharding protocol, not
// hardware scaling.
func parseNodes(spec string, smoke bool) ([]int, error) {
	if spec == "" {
		if smoke {
			return []int{1, 2}, nil
		}
		return []int{1, 2, 4}, nil
	}
	var list []int
	for _, s := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad cluster-nodes value %q", s)
		}
		list = append(list, n)
	}
	sort.Ints(list)
	out := list[:0]
	for i, n := range list {
		if i == 0 || n != list[i-1] {
			out = append(out, n)
		}
	}
	return out, nil
}

// runClusterBench serves the hot default key from sharded fleets of
// increasing size: each point builds a fresh fleet of n in-process
// daemons peered into one rendezvous ring over real HTTP listeners, warms
// every node (one sweep on the key's owner, one forward per non-owner),
// then runs the 32-client load generator with clients spread round-robin
// across the nodes.
func runClusterBench(lmaxCl, nk, kRefine int, nodesList []int, dur time.Duration) ([]ClusterPoint, error) {
	var points []ClusterPoint
	for _, n := range nodesList {
		pt, err := runClusterPoint(lmaxCl, nk, kRefine, n, dur)
		if err != nil {
			return nil, fmt.Errorf("cluster with %d nodes: %w", n, err)
		}
		points = append(points, pt)
	}
	for i := range points {
		points[i].Speedup = points[i].RequestsSec / points[0].RequestsSec
	}
	return points, nil
}

func runClusterPoint(lmaxCl, nk, kRefine, n int, dur time.Duration) (ClusterPoint, error) {
	srvs := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		srvs[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + srvs[i].Listener.Addr().String()
	}
	svcs := make([]*serve.Service, n)
	peerings := make([]*cluster.Peering, n)
	defer func() {
		for i := range srvs {
			srvs[i].Close()
			if svcs[i] != nil {
				svcs[i].Close()
			}
			if peerings[i] != nil {
				peerings[i].Close()
			}
		}
	}()
	for i := range srvs {
		p, err := cluster.New(cluster.Options{
			Self:  urls[i],
			Peers: urls,
			// No hedging: the warm-up cold sweep can outlive any sane hedge
			// window, and a hedged duplicate sweep would spoil the one-sweep
			// accounting this column exists to demonstrate.
			HedgeAfter: -1,
		})
		if err != nil {
			return ClusterPoint{}, err
		}
		peerings[i] = p
		svcs[i] = serve.New(serve.Options{
			Defaults: serve.Defaults{LMaxCl: lmaxCl, NK: nk, KRefine: kRefine, PkNK: 40,
				LSpline: true, KBatch: 4},
			Cluster: p,
		})
		srvs[i].Config.Handler = svcs[i].Handler()
		srvs[i].Start()
	}
	// Warm every node: the key's owner sweeps once, everyone else forwards
	// and keeps a local copy — after this loop the fleet serves the key
	// without further hops.
	client := &http.Client{Timeout: 120 * time.Second}
	for _, u := range urls {
		resp, err := client.Post(u+"/v1/cl", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			return ClusterPoint{}, err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return ClusterPoint{}, fmt.Errorf("warm-up against %s: status %d", u, resp.StatusCode)
		}
	}
	rep, err := serve.RunLoadgen(strings.Join(urls, ","), 32, dur, "{}")
	if err != nil {
		return ClusterPoint{}, err
	}
	pt := ClusterPoint{Nodes: n, RequestsSec: rep.RequestsSec, P99MS: rep.P99MS}
	if rep.Requests > 0 {
		pt.HitRatio = float64(rep.Hits+rep.PeerServed) / float64(rep.Requests)
	}
	for i := range svcs {
		pt.FleetSweeps += svcs[i].Sweeps()
		if st := svcs[i].Stats(); st.Cluster != nil {
			pt.PeerServed += int64(st.Cluster.PeerServed)
		}
	}
	return pt, nil
}

// runScalingSweep times the fast C_l pipeline at each processor count
// (GOMAXPROCS and the sweep worker count move together), reporting
// best-of-3 wallclock and checking the spectra bitwise-identical across
// counts; the returned flag is nil when only one count ran and the check
// was vacuous. Speedup is relative to the first count, and efficiency
// corrects for a baseline that is not one processor. The caller's
// GOMAXPROCS is restored on return.
func runScalingSweep(m *plinger.Model, opts plinger.SpectrumOptions, procsList []int) ([]ScalingPoint, *bool, error) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	identical := true
	var ref *plinger.Spectrum
	var out []ScalingPoint
	for _, np := range procsList {
		runtime.GOMAXPROCS(np)
		o := opts
		o.Workers = np
		best := math.Inf(1)
		var spec *plinger.Spectrum
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			s, err := m.ComputeSpectrum(o)
			if err != nil {
				return nil, nil, err
			}
			if d := float64(time.Since(t0).Nanoseconds()) / 1e6; d < best {
				best = d
			}
			spec = s
		}
		if ref == nil {
			ref = spec
		} else {
			for i := range ref.Cl {
				if spec.Cl[i] != ref.Cl[i] {
					identical = false
				}
			}
		}
		out = append(out, ScalingPoint{Procs: np, WallMS: best})
	}
	base := out[0]
	for i := range out {
		out[i].Speedup = base.WallMS / out[i].WallMS
		out[i].Efficiency = out[i].Speedup * float64(base.Procs) / float64(out[i].Procs)
	}
	if len(out) < 2 {
		return out, nil, nil
	}
	return out, &identical, nil
}

// runFarmScaling times the cold C_l sweep over supervised plingerw
// fleets of increasing size. Each point spawns a FRESH fleet (cold model
// caches, cold arenas on every worker), runs the sweep once through the
// facade's farm routing, checks the spectrum bitwise against the
// in-process reference, and drains the fleet.
func runFarmScaling(m *plinger.Model, opts plinger.SpectrumOptions, ref *plinger.Spectrum, procsList []int) ([]FarmPoint, error) {
	dir, err := os.MkdirTemp("", "plingerw-bench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "plingerw")
	if out, err := exec.Command("go", "build", "-o", bin, "plinger/cmd/plingerw").CombinedOutput(); err != nil {
		return nil, fmt.Errorf("build plingerw: %v\n%s", err, out)
	}
	defer m.DisableFarm()
	var points []FarmPoint
	for _, n := range procsList {
		f, err := farm.New(farm.Options{
			Workers:        n,
			WorkerBin:      bin,
			WorkerArgs:     []string{"-quiet"},
			MinWorkers:     n,
			WaitWorkers:    60 * time.Second,
			AssignDeadline: 120 * time.Second,
		})
		if err != nil {
			return nil, fmt.Errorf("farm with %d workers: %w", n, err)
		}
		joinBy := time.Now().Add(60 * time.Second)
		for f.Alive() < n && time.Now().Before(joinBy) {
			time.Sleep(10 * time.Millisecond)
		}
		if f.Alive() < n {
			f.Close()
			return nil, fmt.Errorf("only %d of %d plingerw processes joined", f.Alive(), n)
		}
		m.EnableFarm(f)
		t0 := time.Now()
		spec, err := m.ComputeSpectrum(opts)
		wall := float64(time.Since(t0).Nanoseconds()) / 1e6
		m.DisableFarm()
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("farm sweep with %d workers: %w", n, err)
		}
		p := FarmPoint{WorkerProcs: n, WallMS: wall, Bitwise: len(spec.Cl) == len(ref.Cl)}
		for i := range ref.Cl {
			if spec.Cl[i] != ref.Cl[i] {
				p.Bitwise = false
			}
		}
		points = append(points, p)
	}
	for i := range points {
		points[i].Speedup = points[0].WallMS / points[i].WallMS
	}
	return points, nil
}

// runAblation times the PR 6 ablation grid on the dense C_l request:
// the lspline {off,on} x kbatch {1,4,8} cross on top of the PR 5 fast
// path, plus each established fast ingredient individually toggled off
// the full configuration (LSpline rides on FastLOS, so the no-FastLOS
// column necessarily drops both). Returns the rows and the full-fast
// over PR 5-fast speedup.
func runAblation(m *plinger.Model, lmaxCl, nk, kRefine int) ([]AblationRow, float64, error) {
	ls := make([]int, 0, lmaxCl-1)
	for l := 2; l <= lmaxCl; l++ {
		ls = append(ls, l)
	}
	base := plinger.SpectrumOptions{LMaxCl: lmaxCl, NK: nk, Ls: ls}
	pr5 := base
	pr5.FastLOS, pr5.FastEvolve, pr5.KRefine = true, true, kRefine

	grid := []struct {
		name string
		mod  func(*plinger.SpectrumOptions)
	}{
		{"pr5_fast", func(o *plinger.SpectrumOptions) {}},
		{"kbatch4", func(o *plinger.SpectrumOptions) { o.KBatch = 4 }},
		{"kbatch8", func(o *plinger.SpectrumOptions) { o.KBatch = 8 }},
		{"lspline", func(o *plinger.SpectrumOptions) { o.LSpline = true }},
		{"lspline_kbatch4", func(o *plinger.SpectrumOptions) { o.LSpline = true; o.KBatch = 4 }},
		{"full_fast", func(o *plinger.SpectrumOptions) { o.LSpline = true; o.KBatch = 8 }},
		{"full_minus_fastlos", func(o *plinger.SpectrumOptions) { o.FastLOS = false; o.KBatch = 8 }},
		{"full_minus_krefine", func(o *plinger.SpectrumOptions) { o.KRefine = 1; o.LSpline = true; o.KBatch = 8 }},
		{"full_minus_fastevolve", func(o *plinger.SpectrumOptions) { o.FastEvolve = false; o.LSpline = true; o.KBatch = 8 }},
	}
	var rows []AblationRow
	var refSpec *plinger.Spectrum
	for _, g := range grid {
		o := pr5
		g.mod(&o)
		// Warm run outside the timed loop: flattened tables, Bessel rows,
		// worker arenas. Its spectrum feeds the accuracy column.
		spec, err := m.ComputeSpectrum(o)
		if err != nil {
			return nil, 0, fmt.Errorf("ablation %s: %w", g.name, err)
		}
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if _, err := m.ComputeSpectrum(o); err != nil {
				return nil, 0, fmt.Errorf("ablation %s: %w", g.name, err)
			}
			if d := float64(time.Since(t0).Nanoseconds()) / 1e6; d < best {
				best = d
			}
		}
		row := AblationRow{Name: g.name, FastLOS: o.FastLOS, KRefine: o.KRefine,
			FastEvolve: o.FastEvolve, LSpline: o.LSpline, KBatch: o.KBatch, WallMS: best}
		if refSpec == nil {
			refSpec = spec
		}
		for i := range refSpec.Cl {
			rel := math.Abs(spec.Cl[i]-refSpec.Cl[i]) / refSpec.Cl[i]
			if rel > row.MaxRelCl {
				row.MaxRelCl = rel
			}
		}
		rows = append(rows, row)
	}
	baseMS := rows[0].WallMS
	var full float64
	for i := range rows {
		rows[i].Speedup = baseMS / rows[i].WallMS
		if rows[i].Name == "full_fast" {
			full = rows[i].Speedup
		}
	}
	return rows, full, nil
}

// sameModeBits compares the deterministic fields of two sweep results —
// everything except the wallclock timings, mirroring the dispatch test
// suite's bitwise contract.
func sameModeBits(a, b *core.Result) bool {
	if a == nil || b == nil {
		return false
	}
	return a.K == b.K && a.LMax == b.LMax && a.Flops == b.Flops &&
		a.DeltaC == b.DeltaC && a.DeltaB == b.DeltaB && a.DeltaG == b.DeltaG &&
		a.Phi == b.Phi && a.Psi == b.Psi && a.Eta == b.Eta &&
		a.Stats.Steps == b.Stats.Steps && a.Stats.Evals == b.Stats.Evals &&
		reflect.DeepEqual(a.ThetaL, b.ThetaL) && reflect.DeepEqual(a.ThetaPL, b.ThetaPL)
}

// runFaultRecovery times one dispatch sweep clean (best of 3) and once with
// the first worker scripted to crash after its first assignment, under the
// fault-tolerant master. Both worlds are chanmp with 3 workers; the
// recovered spectra must match the clean run bitwise.
func runFaultRecovery(cm *core.Model, tau0 float64, lmaxCl, nModes int) (*FaultRecovery, error) {
	const workers = 3
	ks := spectra.ClGrid(lmaxCl, tau0, nModes)
	mode := core.Params{LMax: 24, Gauge: core.ConformalNewtonian}
	runOnce := func(kill bool) (*dispatch.Sweep, *dispatch.RunStats, float64, error) {
		_, eps, err := chanmp.New(workers + 1)
		if err != nil {
			return nil, nil, 0, err
		}
		if kill {
			eps[1] = faultmp.Wrap(eps[1], faultmp.Options{Seed: 7, CrashAfterAssigns: 1})
		}
		d := &dispatch.MP{Model: cm, Endpoints: eps, Transport: "chan", AssignDeadline: 5 * time.Second}
		t0 := time.Now()
		sw, st, err := d.Run(context.Background(), ks, mode)
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		for _, ep := range eps {
			ep.Close()
		}
		return sw, st, ms, err
	}

	fr := &FaultRecovery{Workers: workers, Modes: nModes}
	var clean *dispatch.Sweep
	fr.CleanWallMS = math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		sw, _, ms, err := runOnce(false)
		if err != nil {
			return nil, fmt.Errorf("fault recovery clean run: %w", err)
		}
		if ms < fr.CleanWallMS {
			fr.CleanWallMS = ms
		}
		clean = sw
	}
	sw, st, ms, err := runOnce(true)
	if err != nil {
		return nil, fmt.Errorf("fault recovery kill run: %w", err)
	}
	fr.KillWallMS = ms
	fr.OverheadX = fr.KillWallMS / fr.CleanWallMS
	fr.WorkerFailures = st.WorkerFailures
	fr.Reassignments = st.Reassignments
	fr.LocalModes = st.LocalModes
	if fr.WorkerFailures == 0 {
		return nil, fmt.Errorf("fault recovery: injected kill never failed the worker")
	}
	fr.Bitwise = true
	for i := range clean.Results {
		if !sameModeBits(clean.Results[i], sw.Results[i]) {
			fr.Bitwise = false
		}
	}
	return fr, nil
}

// runServiceBench measures one in-process daemon: cold-miss latency on
// coldN fresh keys, unloaded cache-hit latency, and sustained throughput at
// 32 concurrent clients. The defaults carry the PR 6 execution knobs the
// production daemon ships with (excluded from cache keys).
func runServiceBench(lmaxCl, nk, kRefine, coldN int, dur time.Duration) (*ServiceBench, error) {
	svc := serve.New(serve.Options{
		Defaults: serve.Defaults{LMaxCl: lmaxCl, NK: nk, KRefine: kRefine, PkNK: 40,
			LSpline: true, KBatch: 4},
	})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	client := srv.Client()

	post := func(body string) (float64, error) {
		t0 := time.Now()
		resp, err := client.Post(srv.URL+"/v1/cl", "application/json", bytes.NewReader([]byte(body)))
		ms := float64(time.Since(t0).Nanoseconds()) / 1e6
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("service benchmark: status %d for %s", resp.StatusCode, body)
		}
		return ms, nil
	}

	sb := &ServiceBench{}
	// The very first request pays the one-time model build on top of its
	// sweep; report it separately, then measure the steady-state cold path
	// on three fresh perturbed-resolution keys against the warm model.
	first, err := post("{}")
	if err != nil {
		return nil, err
	}
	sb.FirstRequestMS = first
	// Steady-state cold path: each request perturbs the resolution so it is
	// a guaranteed cache miss against the warm model, and every latency
	// lands in the exposition histogram the quantiles come from.
	coldHist := obs.NewHistogram("cold", "", obs.DefBuckets(), 1)
	var missSum float64
	for i := 0; i < coldN; i++ {
		ms, err := post(fmt.Sprintf(`{"nk": %d}`, nk+1+i))
		if err != nil {
			return nil, err
		}
		missSum += ms
		coldHist.Observe(ms / 1e3)
	}
	sb.ColdMissMS = missSum / float64(coldN)
	snap := coldHist.Snapshot()
	sb.ColdMiss = serve.LatencyStats{
		Count: snap.Count,
		P50MS: snap.Quantile(0.50) * 1e3,
		P95MS: snap.Quantile(0.95) * 1e3,
		P99MS: snap.Quantile(0.99) * 1e3,
		MaxMS: snap.Max * 1e3,
	}

	// Unloaded hit latency: one client against the now-hot default key.
	hit, err := serve.RunLoadgen(srv.URL, 1, dur/2, "{}")
	if err != nil {
		return nil, err
	}
	sb.HitUnloaded = hit

	// Sustained throughput: the acceptance-criterion 32-client run.
	sustained, err := serve.RunLoadgen(srv.URL, 32, dur, "{}")
	if err != nil {
		return nil, err
	}
	sb.Sustained32 = sustained
	sb.Stats = svc.Stats()
	return sb, nil
}
