// Command linger is the serial driver: it evolves a set of k modes through
// the full linearized Einstein-Boltzmann system and writes the matter
// transfer functions, power spectrum and (optionally) the CMB angular
// spectrum — the single-node workflow of Section 3 of the paper.
//
// Usage:
//
//	linger [-h0 0.5] [-omegab 0.05] [-omegal 0] [-nk 40] [-kmin 2e-4]
//	       [-kmax 0.5] [-lmaxcl 0] [-gauge synchronous] [-out linger.out]
//
// With -lmaxcl > 0 a COBE-normalized C_l table is appended (line-of-sight
// method; use -method brute for the paper's full-hierarchy read-off).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"plinger"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("linger: ")
	var (
		h0      = flag.Float64("h0", 0.5, "Hubble constant / (100 km/s/Mpc)")
		omegab  = flag.Float64("omegab", 0.05, "baryon density parameter")
		omegal  = flag.Float64("omegal", 0.0, "cosmological constant density parameter")
		mnu     = flag.Float64("mnu", 0.0, "massive neutrino mass in eV (0 = none)")
		nIndex  = flag.Float64("n", 1.0, "primordial spectral index")
		nk      = flag.Int("nk", 40, "number of wavenumbers (log-spaced)")
		kmin    = flag.Float64("kmin", 2e-4, "smallest k in Mpc^-1")
		kmax    = flag.Float64("kmax", 0.5, "largest k in Mpc^-1")
		lmaxcl  = flag.Int("lmaxcl", 0, "compute C_l up to this multipole (0 = skip)")
		method  = flag.String("method", "los", "C_l method: los or brute")
		workers = flag.Int("workers", 0, "worker goroutines (0 = all CPUs)")
		out     = flag.String("out", "linger.out", "output file")
	)
	flag.Parse()

	cfg := plinger.SCDM()
	cfg.H = *h0
	cfg.OmegaB = *omegab
	cfg.OmegaLambda = *omegal
	cfg.SpectralIndex = *nIndex
	if *mnu > 0 {
		cfg.NNuMassless = 2
		cfg.NNuMassive = 1
		cfg.MNuEV = *mnu
	}
	cfg.OmegaC = 1 - cfg.OmegaB - cfg.OmegaLambda - 2.47e-5/(cfg.H*cfg.H)*(1+3*0.2271)
	cfg.Flatten = true

	start := time.Now()
	m, err := plinger.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("background + recombination tables: %.2fs (tau0 = %.0f Mpc, tau_rec = %.0f Mpc)\n",
		time.Since(start).Seconds(), m.Tau0(), m.TauRecombination())

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	defer w.Flush()

	start = time.Now()
	mp, err := m.MatterPower(plinger.MatterPowerOptions{
		KMin: *kmin, KMax: *kmax, NK: *nk, Workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matter transfer (%d modes): %.2fs, sigma8(unnormalized) = %.3g\n",
		*nk, time.Since(start).Seconds(), mp.Sigma8)
	fmt.Fprintf(w, "# matter transfer: k[Mpc^-1]  T(k)  P(k)[Mpc^3]\n")
	for i := range mp.K {
		fmt.Fprintf(w, "%.6e %.6e %.6e\n", mp.K[i], mp.T[i], mp.P[i])
	}

	if *lmaxcl > 0 {
		start = time.Now()
		spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{
			LMaxCl: *lmaxcl, Method: *method, Workers: *workers,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := spec.NormalizeCOBE(18); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("C_l to l=%d (%s): %.2fs\n", *lmaxcl, *method, time.Since(start).Seconds())
		fmt.Fprintf(w, "# CMB spectrum (COBE normalized): l  l(l+1)Cl/2pi  dT_l[uK]\n")
		for i, l := range spec.L {
			fmt.Fprintf(w, "%d %.6e %.3f\n", l, float64(l*(l+1))*spec.Cl[i]/(2*3.141592653589793), spec.BandPower(i))
		}
	}
	fmt.Printf("wrote %s\n", *out)
}
