// Command plingerw is the farm worker: it dials a plingerd master (or any
// farm.Supervisor), registers, and serves sweeps until drained. Across
// sweeps it keeps its models — background/thermodynamics/EvalTables — and
// one evolution arena warm, so a fleet of these processes gives every
// sweep hot caches on every host.
//
// The process is deliberately dumb about failure: if the connection dies
// for any reason it reconnects with exponential backoff and registers
// again (counting its rejoins), and if the master stays unreachable past
// -retry-window it exits so an external supervisor (or the farm's own
// restart budget) decides what happens next. A drain order from the
// master is the one clean exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"plinger/internal/core"
	"plinger/internal/farm"
)

func main() {
	var (
		master      = flag.String("master", "", "master address to dial (host:port, required)")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second, "per-attempt dial timeout")
		retryWindow = flag.Duration("retry-window", 5*time.Minute, "give up after this long without a successful session")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()
	if *master == "" {
		fmt.Fprintln(os.Stderr, "plingerw: -master is required")
		flag.Usage()
		os.Exit(2)
	}
	logf := log.New(os.Stderr, "plingerw ", log.LstdFlags).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// Warm state survives reconnects: the same model cache and evolution
	// arena serve every session this process ever runs.
	models := farm.NewModelCache()
	scratch := core.NewScratch()
	uid := farm.NewWorkerUID()

	const backoffMin, backoffMax = 200 * time.Millisecond, 15 * time.Second
	backoff := backoffMin
	rejoins := 0
	lastGood := time.Now()
	for {
		conn, err := net.DialTimeout("tcp", *master, *dialTimeout)
		if err != nil {
			if time.Since(lastGood) > *retryWindow {
				logf("no master at %s for %v; giving up", *master, *retryWindow)
				os.Exit(1)
			}
			logf("dial %s: %v (retrying in %v)", *master, err, backoff)
			time.Sleep(backoff)
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		sessionStart := time.Now()
		err = farm.ServeWorker(conn, farm.WorkerOptions{
			UID:     uid,
			Rejoins: rejoins,
			Logf:    logf,
			Models:  models,
			Scratch: scratch,
		})
		conn.Close()
		if err == nil {
			logf("drained; exiting")
			return
		}
		rejoins++
		if time.Since(sessionStart) > 5*time.Second {
			// A session that lived a while was a healthy one: its loss is
			// fresh news, not part of an ongoing outage.
			backoff = backoffMin
		}
		lastGood = time.Now()
		logf("session ended: %v (reconnect %d in %v)", err, rejoins, backoff)
		time.Sleep(backoff)
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}
