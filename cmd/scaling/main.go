// Command scaling regenerates Figure 1 of the paper: wallclock and total
// CPU time as a function of the number of processors for a fixed test
// workload, together with the ideal 1/P curve, the parallel efficiency
// ((total CPU)/(wallclock x processors), 95% in the paper) and the
// aggregate flop rate (the Section 5.1 table). It can also sweep the
// scheduling policies (the paper's largest-k-first trick) and the
// execution backends (shared-memory pool and every mp transport), all
// through the dispatch subsystem.
//
// Usage:
//
//	scaling [-np 1,2,4,8] [-nk 24] [-lmax 120] [-schedules] [-backends]
//	        [-fastcl] [-fastevolve] [-pipeline]
//
// -fastcl adds the fast C_l pipeline ablation: the exact reference
// line-of-sight pipeline against the table-driven engine with
// coarse-to-fine k refinement, at equal settings. -fastevolve ablates the
// fast evolution engine (growing hierarchy truncation + flattened
// tau-tables + PI step control) on the fixed workload at equal tolerance.
// -pipeline sweeps GOMAXPROCS over the -np list and runs the full fast
// C_l pipeline (arena-backed evolutions + k refinement + kernel tables)
// at each count — the production analogue of the Figure-1 experiment,
// reporting wallclock, speedup and parallel efficiency per processor.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"strconv"
	"strings"
	"time"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/recomb"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	var (
		npList    = flag.String("np", "1,2,4,8", "comma-separated worker counts")
		nk        = flag.Int("nk", 24, "number of wavenumbers in the test run")
		lmax      = flag.Int("lmax", 120, "hierarchy cutoff cap")
		schedules = flag.Bool("schedules", false, "also sweep scheduling policies")
		backends  = flag.Bool("backends", false, "also sweep execution backends")
		fastcl    = flag.Bool("fastcl", false, "also compare the reference and fast C_l pipelines")
		fastev    = flag.Bool("fastevolve", false, "also ablate the fast evolution engine on the fixed workload")
		pipeline  = flag.Bool("pipeline", false, "also sweep GOMAXPROCS over the full fast C_l pipeline")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)
	ks := spectra.ClGrid(*lmax, bg.Tau0(), *nk)
	mode := core.Params{LMax: *lmax, Gauge: core.Synchronous}

	fmt.Printf("Figure 1: fixed workload of %d modes (lmax %d), largest-k-first\n", *nk, *lmax)
	fmt.Printf("%4s %12s %12s %11s %12s %12s\n",
		"np", "wall [s]", "CPU [s]", "eff [%]", "Mflop/s", "ideal [s]")
	var t1 float64
	for _, s := range strings.Split(*npList, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || np < 1 {
			log.Fatalf("bad worker count %q", s)
		}
		st := run(model, ks, mode, np, dispatch.LargestFirst, "chan")
		if t1 == 0 {
			t1 = st.Wallclock
		}
		fmt.Printf("%4d %12.3f %12.3f %11.1f %12.1f %12.3f\n",
			np, st.Wallclock, st.TotalCPU, 100*st.Efficiency,
			st.FlopRate/1e6, t1/float64(np))
	}

	if *schedules {
		fmt.Printf("\nscheduling ablation (4 workers): the paper computes the largest k first\n")
		fmt.Printf("%16s %12s %11s\n", "schedule", "wall [s]", "eff [%]")
		for _, sched := range []dispatch.Schedule{dispatch.LargestFirst, dispatch.InputOrder, dispatch.SmallestFirst} {
			st := run(model, ks, mode, 4, sched, "chan")
			fmt.Printf("%16s %12.3f %11.1f\n", sched, st.Wallclock, 100*st.Efficiency)
		}
	}

	if *backends {
		fmt.Printf("\nbackend ablation (4 workers): \"the choice of which library to use\n")
		fmt.Printf("has no effect on the efficiency of the code\" (Section 4)\n")
		fmt.Printf("%10s %12s %11s %14s\n", "backend", "wall [s]", "eff [%]", "payload [kB]")
		for _, tr := range []string{"pool", "chan", "fifo", "tcp"} {
			st := run(model, ks, mode, 4, dispatch.LargestFirst, tr)
			fmt.Printf("%10s %12.3f %11.1f %14.1f\n",
				st.Backend, st.Wallclock, 100*st.Efficiency,
				float64(st.BytesMoved)/1e3)
		}
	}

	if *fastev {
		fastEvolveAblation(model, ks, mode)
	}

	if *fastcl {
		fastClAblation(model, th, *nk)
	}

	if *pipeline {
		pipelineScaling(model, th, *npList)
	}
}

// pipelineScaling is the production-workload version of the Figure-1
// sweep: the full fast C_l pipeline (coarse arena-backed sweep, k
// refinement, table projection) at LMaxCl 150 / NK 130, once per
// GOMAXPROCS value in the -np list. Spectra are checked bitwise-identical
// across counts, so the curve compares runs with exactly equal outputs.
func pipelineScaling(model *core.Model, th *thermo.Thermo, npList string) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	const lmaxCl, nk = 150, 130
	tau0, tauRec := model.BG.Tau0(), th.TauRec()
	ks := spectra.ClGrid(lmaxCl, tau0, nk)
	ls := spectra.DefaultLs(lmaxCl)
	prim := spectra.DefaultPrimordial(1.0)
	mode := core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true, FastEvolve: true}
	kRefine := spectra.SafeKRefine(10, nk, ks[0], ks[len(ks)-1], tauRec)
	coarseKs := spectra.RefineCoarseGrid(ks, kRefine)

	runOnce := func(np int) *spectra.ClSpectrum {
		sw, err := spectra.RunSweep(model, mode, coarseKs, np, false)
		if err != nil {
			log.Fatal(err)
		}
		refined, err := sw.RefineK(nk, tauRec)
		if err != nil {
			log.Fatal(err)
		}
		cl, err := refined.ClLOSFast(ls, prim, 2.726, tauRec)
		if err != nil {
			log.Fatal(err)
		}
		return cl
	}
	// One untimed warm-up so the one-time builds (flattened tau-tables,
	// Bessel kernel tables) do not land inside the baseline point and
	// inflate every later speedup.
	runOnce(1)

	fmt.Printf("\nfast C_l pipeline scaling (lmaxcl %d, nk %d, krefine %d, %d cores):\n",
		lmaxCl, nk, kRefine, runtime.NumCPU())
	fmt.Printf("%6s %12s %10s %12s\n", "procs", "wall [s]", "speedup", "eff [%]")
	// Speedup is measured against the first listed count (np0); parallel
	// efficiency corrects for a baseline that is not one processor.
	var t1 float64
	np0 := 0
	var ref *spectra.ClSpectrum
	for _, s := range strings.Split(npList, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || np < 1 {
			log.Fatalf("bad processor count %q", s)
		}
		runtime.GOMAXPROCS(np)
		start := time.Now()
		cl := runOnce(np)
		wall := time.Since(start).Seconds()
		if ref == nil {
			ref, t1, np0 = cl, wall, np
		} else {
			for i := range ref.Cl {
				if cl.Cl[i] != ref.Cl[i] {
					log.Fatalf("C_l at procs=%d differs bitwise from procs=%d (determinism contract broken)", np, np0)
				}
			}
		}
		speedup := t1 / wall
		fmt.Printf("%6d %12.3f %9.2fx %11.1f\n", np, wall, speedup,
			100*speedup*float64(np0)/float64(np))
	}
}

// fastEvolveAblation times the fixed Figure-1 workload with the reference
// per-mode integration against the fast evolution engine (growing
// hierarchy truncation + flattened tau-tables + PI step control) at equal
// tolerance, single-worker so the per-mode speedup is not masked by load
// balance, and reports the worst relative transfer-function deviation.
func fastEvolveAblation(model *core.Model, ks []float64, mode core.Params) {
	fast := mode
	fast.FastEvolve = true

	start := time.Now()
	ref, err := spectra.RunSweep(model, mode, ks, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	tRef := time.Since(start).Seconds()
	start = time.Now()
	fsw, err := spectra.RunSweep(model, fast, ks, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	tFast := time.Since(start).Seconds()

	worst := 0.0
	var evalsRef, evalsFast int
	for i := range ref.Results {
		r, f := ref.Results[i], fsw.Results[i]
		evalsRef += r.Stats.Evals
		evalsFast += f.Stats.Evals
		scale := 0.0
		for _, v := range r.ThetaL {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		if scale == 0 {
			continue
		}
		for l := range r.ThetaL {
			if rel := math.Abs(f.ThetaL[l]-r.ThetaL[l]) / scale; rel > worst {
				worst = rel
			}
		}
	}
	fmt.Printf("\nfast evolution engine (1 worker, %d modes, equal RTol):\n", len(ks))
	fmt.Printf("%12s %12s %10s %14s %22s\n", "ref [s]", "fast [s]", "speedup", "RHS evals", "worst rel Theta_l")
	fmt.Printf("%12.3f %12.3f %9.2fx %6d->%6d %22.2e\n",
		tRef, tFast, tRef/tFast, evalsRef, evalsFast, worst)
}

// fastClAblation times the reference Figure-2 C_l pipeline (every mode
// evolved, exact Bessel recurrences) against the fast engine (coarse sweep
// + source refinement in k + shared kernel tables) at equal settings and
// reports the speedup and the worst relative deviation.
func fastClAblation(model *core.Model, th *thermo.Thermo, nk int) {
	const lmaxCl = 150
	tau0 := model.BG.Tau0()
	tauRec := th.TauRec()
	ks := spectra.ClGrid(lmaxCl, tau0, nk)
	ls := spectra.DefaultLs(lmaxCl)
	prim := spectra.DefaultPrimordial(1.0)
	mode := core.Params{LMax: 24, Gauge: core.ConformalNewtonian, KeepSources: true}

	start := time.Now()
	full, err := spectra.RunSweep(model, mode, ks, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := full.ClLOS(ls, prim, 2.726, tauRec)
	if err != nil {
		log.Fatal(err)
	}
	tRef := time.Since(start).Seconds()

	kRefine := spectra.SafeKRefine(10, nk, ks[0], ks[len(ks)-1], tauRec)
	coarseKs := spectra.RefineCoarseGrid(ks, kRefine)
	if kRefine <= 1 || len(coarseKs) >= nk {
		fmt.Printf("\nfast C_l ablation skipped: -nk %d leaves no room for coarse-to-fine "+
			"refinement (coarse grid would have %d modes); try -nk 130\n", nk, len(coarseKs))
		return
	}
	start = time.Now()
	coarse, err := spectra.RunSweep(model, mode, coarseKs, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	refined, err := coarse.RefineK(nk, tauRec)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := refined.ClLOSFast(ls, prim, 2.726, tauRec)
	if err != nil {
		log.Fatal(err)
	}
	tFast := time.Since(start).Seconds()

	worst := 0.0
	for i := range ref.Cl {
		if rel := math.Abs(fast.Cl[i]-ref.Cl[i]) / ref.Cl[i]; rel > worst {
			worst = rel
		}
	}
	fmt.Printf("\nfast C_l pipeline (lmaxcl %d, nk %d, krefine %d):\n", lmaxCl, nk, kRefine)
	fmt.Printf("%12s %12s %10s %22s\n", "ref [s]", "fast [s]", "speedup", "worst rel deviation")
	fmt.Printf("%12.3f %12.3f %9.2fx %22.2e\n", tRef, tFast, tRef/tFast, worst)
}

// run executes the fixed workload on one dispatcher configuration.
func run(model *core.Model, ks []float64, mode core.Params, np int, sched dispatch.Schedule, backend string) *dispatch.RunStats {
	var d dispatch.Dispatcher
	cleanup := func() {}
	if backend == "pool" {
		d = &dispatch.Pool{Model: model, Workers: np, Schedule: sched}
	} else {
		mpd, c, err := dispatch.NewMP(model, backend, np)
		if err != nil {
			log.Fatal(err)
		}
		mpd.Schedule = sched
		d, cleanup = mpd, c
	}
	_, st, err := d.Run(context.Background(), ks, mode)
	cleanup()
	if err != nil {
		log.Fatal(err)
	}
	return st
}
