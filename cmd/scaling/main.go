// Command scaling regenerates Figure 1 of the paper: wallclock and total
// CPU time as a function of the number of processors for a fixed test
// workload, together with the ideal 1/P curve, the parallel efficiency
// ((total CPU)/(wallclock x processors), 95% in the paper) and the
// aggregate flop rate (the Section 5.1 table). It can also sweep the
// scheduling policies (the paper's largest-k-first trick) and transports.
//
// Usage:
//
//	scaling [-np 1,2,4,8] [-nk 24] [-lmax 120] [-schedules] [-transports]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"sync"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/mp"
	"plinger/internal/mp/chanmp"
	"plinger/internal/mp/fifomp"
	"plinger/internal/mp/tcpmp"
	runner "plinger/internal/plinger"
	"plinger/internal/recomb"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	var (
		npList     = flag.String("np", "1,2,4,8", "comma-separated worker counts")
		nk         = flag.Int("nk", 24, "number of wavenumbers in the test run")
		lmax       = flag.Int("lmax", 120, "hierarchy cutoff cap")
		schedules  = flag.Bool("schedules", false, "also sweep scheduling policies")
		transports = flag.Bool("transports", false, "also sweep transports")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)
	ks := spectra.ClGrid(*lmax, bg.Tau0(), *nk)
	mode := core.Params{LMax: *lmax, Gauge: core.Synchronous}

	fmt.Printf("Figure 1: fixed workload of %d modes (lmax %d), largest-k-first\n", *nk, *lmax)
	fmt.Printf("%4s %12s %12s %11s %12s %12s\n",
		"np", "wall [s]", "CPU [s]", "eff [%]", "Mflop/s", "ideal [s]")
	var t1 float64
	for _, s := range strings.Split(*npList, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || np < 1 {
			log.Fatalf("bad worker count %q", s)
		}
		res := run(model, ks, mode, np, runner.LargestFirst, "chan")
		st := res.Stats
		if t1 == 0 {
			t1 = st.Wallclock
		}
		fmt.Printf("%4d %12.3f %12.3f %11.1f %12.1f %12.3f\n",
			np, st.Wallclock, st.TotalCPU, 100*st.Efficiency,
			st.FlopRate/1e6, t1/float64(np))
	}

	if *schedules {
		fmt.Printf("\nscheduling ablation (4 workers): the paper computes the largest k first\n")
		fmt.Printf("%16s %12s %11s\n", "schedule", "wall [s]", "eff [%]")
		for _, sched := range []runner.Schedule{runner.LargestFirst, runner.InputOrder, runner.SmallestFirst} {
			res := run(model, ks, mode, 4, sched, "chan")
			fmt.Printf("%16s %12.3f %11.1f\n", sched, res.Stats.Wallclock, 100*res.Stats.Efficiency)
		}
	}

	if *transports {
		fmt.Printf("\ntransport ablation (4 workers): \"the choice of which library to use\n")
		fmt.Printf("has no effect on the efficiency of the code\" (Section 4)\n")
		fmt.Printf("%10s %12s %11s %14s\n", "transport", "wall [s]", "eff [%]", "payload [kB]")
		for _, tr := range []string{"chan", "fifo", "tcp"} {
			res := run(model, ks, mode, 4, runner.LargestFirst, tr)
			fmt.Printf("%10s %12.3f %11.1f %14.1f\n",
				tr, res.Stats.Wallclock, 100*res.Stats.Efficiency,
				float64(res.Stats.BytesReceived)/1e3)
		}
	}
}

func run(model *core.Model, ks []float64, mode core.Params, np int, sched runner.Schedule, transport string) *runner.Results {
	var eps []mp.Endpoint
	var cleanup func()
	switch transport {
	case "chan":
		_, e, err := chanmp.New(np + 1)
		if err != nil {
			log.Fatal(err)
		}
		eps = e
	case "fifo":
		_, e, err := fifomp.New(np + 1)
		if err != nil {
			log.Fatal(err)
		}
		eps = e
	case "tcp":
		hub, err := tcpmp.NewHub("127.0.0.1:0", np+1)
		if err != nil {
			log.Fatal(err)
		}
		cleanup = func() { hub.Close() }
		eps = make([]mp.Endpoint, np+1)
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i <= np; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ep, err := tcpmp.Connect(hub.Addr())
				if err != nil {
					log.Fatal(err)
				}
				mu.Lock()
				eps[ep.Rank()] = ep
				mu.Unlock()
			}()
		}
		wg.Wait()
	}
	var wg sync.WaitGroup
	for w := 1; w <= np; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := runner.Worker(eps[w], model, ks, mode); err != nil {
				log.Printf("worker %d: %v", w, err)
			}
		}(w)
	}
	res, err := runner.Master(eps[0], model, runner.Config{KValues: ks, Mode: mode, Schedule: sched})
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	if cleanup != nil {
		cleanup()
	}
	return res
}
