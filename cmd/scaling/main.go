// Command scaling regenerates Figure 1 of the paper: wallclock and total
// CPU time as a function of the number of processors for a fixed test
// workload, together with the ideal 1/P curve, the parallel efficiency
// ((total CPU)/(wallclock x processors), 95% in the paper) and the
// aggregate flop rate (the Section 5.1 table). It can also sweep the
// scheduling policies (the paper's largest-k-first trick) and the
// execution backends (shared-memory pool and every mp transport), all
// through the dispatch subsystem.
//
// Usage:
//
//	scaling [-np 1,2,4,8] [-nk 24] [-lmax 120] [-schedules] [-backends]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/recomb"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scaling: ")
	var (
		npList    = flag.String("np", "1,2,4,8", "comma-separated worker counts")
		nk        = flag.Int("nk", 24, "number of wavenumbers in the test run")
		lmax      = flag.Int("lmax", 120, "hierarchy cutoff cap")
		schedules = flag.Bool("schedules", false, "also sweep scheduling policies")
		backends  = flag.Bool("backends", false, "also sweep execution backends")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)
	ks := spectra.ClGrid(*lmax, bg.Tau0(), *nk)
	mode := core.Params{LMax: *lmax, Gauge: core.Synchronous}

	fmt.Printf("Figure 1: fixed workload of %d modes (lmax %d), largest-k-first\n", *nk, *lmax)
	fmt.Printf("%4s %12s %12s %11s %12s %12s\n",
		"np", "wall [s]", "CPU [s]", "eff [%]", "Mflop/s", "ideal [s]")
	var t1 float64
	for _, s := range strings.Split(*npList, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || np < 1 {
			log.Fatalf("bad worker count %q", s)
		}
		st := run(model, ks, mode, np, dispatch.LargestFirst, "chan")
		if t1 == 0 {
			t1 = st.Wallclock
		}
		fmt.Printf("%4d %12.3f %12.3f %11.1f %12.1f %12.3f\n",
			np, st.Wallclock, st.TotalCPU, 100*st.Efficiency,
			st.FlopRate/1e6, t1/float64(np))
	}

	if *schedules {
		fmt.Printf("\nscheduling ablation (4 workers): the paper computes the largest k first\n")
		fmt.Printf("%16s %12s %11s\n", "schedule", "wall [s]", "eff [%]")
		for _, sched := range []dispatch.Schedule{dispatch.LargestFirst, dispatch.InputOrder, dispatch.SmallestFirst} {
			st := run(model, ks, mode, 4, sched, "chan")
			fmt.Printf("%16s %12.3f %11.1f\n", sched, st.Wallclock, 100*st.Efficiency)
		}
	}

	if *backends {
		fmt.Printf("\nbackend ablation (4 workers): \"the choice of which library to use\n")
		fmt.Printf("has no effect on the efficiency of the code\" (Section 4)\n")
		fmt.Printf("%10s %12s %11s %14s\n", "backend", "wall [s]", "eff [%]", "payload [kB]")
		for _, tr := range []string{"pool", "chan", "fifo", "tcp"} {
			st := run(model, ks, mode, 4, dispatch.LargestFirst, tr)
			fmt.Printf("%10s %12.3f %11.1f %14.1f\n",
				st.Backend, st.Wallclock, 100*st.Efficiency,
				float64(st.BytesMoved)/1e3)
		}
	}
}

// run executes the fixed workload on one dispatcher configuration.
func run(model *core.Model, ks []float64, mode core.Params, np int, sched dispatch.Schedule, backend string) *dispatch.RunStats {
	var d dispatch.Dispatcher
	cleanup := func() {}
	if backend == "pool" {
		d = &dispatch.Pool{Model: model, Workers: np, Schedule: sched}
	} else {
		mpd, c, err := dispatch.NewMP(model, backend, np)
		if err != nil {
			log.Fatal(err)
		}
		mpd.Schedule = sched
		d, cleanup = mpd, c
	}
	_, st, err := d.Run(context.Background(), ks, mode)
	cleanup()
	if err != nil {
		log.Fatal(err)
	}
	return st
}
