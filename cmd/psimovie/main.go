// Command psimovie regenerates the paper's MPEG movie as a PGM frame
// series: the conformal Newtonian potential psi on a comoving 100 Mpc
// square, evolving from the radiation era until shortly after recombination
// (conformal time 250 Mpc). The acoustic oscillations of the photon-baryon
// fluid are visible as rippling of the potential at early times.
//
// Usage:
//
//	psimovie [-box 100] [-n 128] [-frames 50] [-tauend 250] [-dir frames]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/recomb"
	"plinger/internal/sky"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("psimovie: ")
	var (
		box    = flag.Float64("box", 100, "comoving box side in Mpc")
		n      = flag.Int("n", 128, "grid points per side (power of two)")
		frames = flag.Int("frames", 50, "number of frames")
		tauEnd = flag.Float64("tauend", 250, "final conformal time in Mpc")
		outDir = flag.String("dir", "frames", "output directory")
		seed   = flag.Int64("seed", 1995, "realization seed")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)

	// The box needs transfer functions from its fundamental mode up to the
	// Nyquist frequency.
	kmin := 2 * math.Pi / *box
	kny := math.Pi * float64(*n) / *box
	ks := spectra.LogGrid(kmin*0.8, kny*1.1, 28)
	fmt.Printf("evolving %d modes (k = %.3f..%.2f Mpc^-1) to tau = %.0f Mpc\n",
		len(ks), ks[0], ks[len(ks)-1], *tauEnd)
	sweep, err := spectra.RunSweep(model, core.Params{
		LMax: 40, Gauge: core.ConformalNewtonian, KeepSources: true, TauEnd: *tauEnd,
	}, ks, 0, false)
	if err != nil {
		log.Fatal(err)
	}

	field, err := sky.NewPsiField(ks, sweep.Results, *n, *box, 1.0, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	// Fixed gray scale across frames so the decay of the potential shows.
	first, err := field.Frame(5.0)
	if err != nil {
		log.Fatal(err)
	}
	_, mx, _ := first.Stats()
	scale := 2.5 * mx
	for f := 0; f < *frames; f++ {
		tau := 5.0 + (*tauEnd-5.0)*float64(f)/float64(*frames-1)
		frame, err := field.Frame(tau)
		if err != nil {
			log.Fatal(err)
		}
		name := filepath.Join(*outDir, fmt.Sprintf("psi_%03d.pgm", f))
		out, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := frame.WritePGM(out, scale); err != nil {
			log.Fatal(err)
		}
		out.Close()
		if f%10 == 0 {
			_, _, rms := frame.Stats()
			fmt.Printf("frame %3d: tau = %6.1f Mpc (a = %.2e), rms = %.3g\n",
				f, tau, bg.AofTau(tau), rms)
		}
	}
	fmt.Printf("wrote %d frames to %s (encode with e.g. ffmpeg -i psi_%%03d.pgm)\n", *frames, *outDir)
}
