// Command cmbmap regenerates Figure 3: a simulated sky map from the
// COBE-normalized SCDM spectrum. It writes two PGM images — a COBE-like
// full-sky map at ten-degree resolution and the paper's half-degree flat
// patch ("the maximum temperature differences are +/- 200 micro-K") — and
// prints the map statistics.
//
// Usage:
//
//	cmbmap [-lmaxcl 300] [-nk 260] [-patchdeg 32] [-n 128] [-seed 1995]
//	       [-full cobe.pgm] [-patch patch.pgm]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"plinger"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cmbmap: ")
	var (
		lmaxcl   = flag.Int("lmaxcl", 300, "spectrum computed to this multipole")
		nk       = flag.Int("nk", 260, "wavenumber grid size")
		n        = flag.Int("n", 128, "patch pixels per side (power of two)")
		patchdeg = flag.Float64("patchdeg", 32, "patch side in degrees")
		seed     = flag.Int64("seed", 1995, "realization seed")
		fullOut  = flag.String("full", "cobe.pgm", "full-sky PGM output")
		patchOut = flag.String("patch", "patch.pgm", "flat-patch PGM output")
	)
	flag.Parse()

	m, err := plinger.New(plinger.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	spec, err := m.ComputeSpectrum(plinger.SpectrumOptions{LMaxCl: *lmaxcl, NK: *nk})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := spec.NormalizeCOBE(18); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spectrum to l=%d: %.1fs\n", *lmaxcl, time.Since(start).Seconds())

	write := func(name string, mp *plinger.SkyMapResult) {
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := mp.WritePGM(f, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s  min %.0f uK  max %.0f uK  rms %.0f uK\n",
			name, mp.Desc, mp.Min, mp.Max, mp.RMS)
	}

	full, err := plinger.MakeSkyMap(spec, 2.726, plinger.SkyMapOptions{
		N: 90, LMaxSynthesis: 40, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	write(*fullOut, full)

	patch, err := plinger.MakeSkyMap(spec, 2.726, plinger.SkyMapOptions{
		Flat: true, N: *n, SizeDeg: *patchdeg, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	write(*patchOut, patch)
	fmt.Printf("paper: \"maximum temperature differences are +/- 200 micro-K\" at half-degree resolution\n")
}
