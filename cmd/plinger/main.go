// Command plinger is the parallel driver: the master/worker decomposition
// of Appendix A over either in-process workers (like MPI on one node) or
// TCP across OS processes (like PVM across a cluster; the hub plays the
// PVM daemon). All fan-out goes through the dispatch subsystem.
//
// Single process, n workers (in-process "chan" or strict-FIFO "fifo"):
//
//	plinger -np 8 -nk 64 -lmax 80 -unit1 plinger.txt -unit2 plinger.dat
//
// Across processes: start the master, then connect workers:
//
//	plinger -transport tcp -role master -addr :7070 -np 4 -nk 64
//	plinger -transport tcp -role worker -addr host:7070 -nk 64
//
// The worker must be given the same -nk/-kmin/-kmax so both sides agree on
// the wavenumber table (the paper broadcasts the rest at tag 1).
//
// With -cl the master assembles the angular power spectrum from the
// returned sources after the sweep; -fastcl switches to the table-driven
// fast projection and -krefine N splines the sources onto an N-times finer
// wavenumber grid first (the CMBFAST-style refinement):
//
//	plinger -np 4 -nk 40 -lmaxcl 150 -cl -fastcl -krefine 6
//
// -fastevolve switches the per-mode integration itself to the fast
// evolution engine (growing hierarchy truncation, flattened background and
// thermodynamics tables, PI step control); it composes with -cl/-fastcl
// and with the plain sweep.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/mp"
	"plinger/internal/mp/tcpmp"
	"plinger/internal/recomb"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plinger: ")
	var (
		np        = flag.Int("np", 2, "number of workers (master is extra)")
		nk        = flag.Int("nk", 32, "number of wavenumbers")
		kmin      = flag.Float64("kmin", 0.0, "smallest k (0: from lmaxcl grid)")
		kmax      = flag.Float64("kmax", 0.0, "largest k (0: from lmaxcl grid)")
		lmaxcl    = flag.Int("lmaxcl", 200, "target C_l multipole for the k grid")
		lmax      = flag.Int("lmax", 0, "hierarchy cutoff (0: adaptive per k)")
		gaugeName = flag.String("gauge", "synchronous", "gauge: synchronous or newtonian")
		schedule  = flag.String("schedule", "largest-first", "largest-first | input-order | smallest-first")
		transport = flag.String("transport", "chan", "chan | fifo (in-process) or tcp")
		role      = flag.String("role", "master", "tcp role: master or worker")
		addr      = flag.String("addr", "127.0.0.1:7070", "tcp address")
		unit1     = flag.String("unit1", "", "ASCII summary output file")
		unit2     = flag.String("unit2", "", "binary moment output file")
		cl        = flag.Bool("cl", false, "assemble C_l from the sweep afterwards (forces newtonian gauge + sources)")
		fastcl    = flag.Bool("fastcl", false, "with -cl: table-driven fast projection instead of the exact reference")
		krefine   = flag.Int("krefine", 1, "with -cl: spline sources onto a krefine-times finer k grid before the quadrature")
		fastev    = flag.Bool("fastevolve", false, "fast evolution engine: growing hierarchy truncation + flattened tau-tables + PI step control")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)

	var ks []float64
	if *kmin > 0 && *kmax > *kmin {
		ks = spectra.LogGrid(*kmin, *kmax, *nk)
	} else {
		ks = spectra.ClGrid(*lmaxcl, bg.Tau0(), *nk)
	}
	// -lmax 0 requests the paper's per-k adaptive hierarchy: the global
	// cap covers the largest wavenumber and the dispatcher trims per mode.
	adapt := *lmax == 0
	gl := *lmax
	if gl == 0 {
		gl = spectra.PerKLMax(ks[len(ks)-1], bg.Tau0(), 1<<20)
	}
	gauge := core.Synchronous
	if *gaugeName == "newtonian" {
		gauge = core.ConformalNewtonian
	}
	mode := core.Params{LMax: gl, Gauge: gauge, FastEvolve: *fastev}
	if *cl {
		// The line-of-sight assembly needs Newtonian sources; a short
		// hierarchy suffices (the projection supplies the multipoles).
		mode.Gauge = core.ConformalNewtonian
		mode.KeepSources = true
		if *lmax == 0 {
			mode.LMax = 24
			adapt = false
		}
	}

	sched, err := dispatch.ParseSchedule(*schedule)
	if err != nil {
		log.Fatal(err)
	}

	openOut := func(name string) io.Writer {
		if name == "" {
			return nil
		}
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		// flushed on exit
		deferred = append(deferred, func() { w.Flush(); f.Close() })
		return w
	}

	switch *transport {
	case "chan", "fifo":
		d, cleanup, err := dispatch.NewMP(model, *transport, *np)
		if err != nil {
			log.Fatal(err)
		}
		d.Schedule = sched
		d.AdaptLMax = adapt
		d.ASCIIOut = openOut(*unit1)
		d.BinaryOut = openOut(*unit2)
		sw, st, err := d.Run(context.Background(), ks, mode)
		cleanup()
		if err != nil {
			log.Fatal(err)
		}
		report(sw, st)
		if *cl {
			reportCl(sw, bg.Tau0(), th.TauRec(), *lmaxcl, *fastcl, *krefine)
		}
	case "tcp":
		switch *role {
		case "master":
			hub, err := tcpmp.NewHub(*addr, *np+1)
			if err != nil {
				log.Fatal(err)
			}
			defer hub.Close()
			fmt.Printf("hub listening on %s; waiting for %d workers\n", hub.Addr(), *np)
			ep, err := tcpmp.Connect(hub.Addr())
			if err != nil {
				log.Fatal(err)
			}
			d := &dispatch.MP{
				Model:     model,
				Endpoints: []mp.Endpoint{ep},
				Schedule:  sched,
				AdaptLMax: adapt,
				ASCIIOut:  openOut(*unit1),
				BinaryOut: openOut(*unit2),
				Transport: "tcp",
			}
			sw, st, err := d.Run(context.Background(), ks, mode)
			if err != nil {
				log.Fatal(err)
			}
			report(sw, st)
			if *cl {
				reportCl(sw, bg.Tau0(), th.TauRec(), *lmaxcl, *fastcl, *krefine)
			}
			fmt.Printf("hub routed %d payload bytes\n", hub.BytesMoved())
		case "worker":
			ep, err := tcpmp.Connect(*addr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("connected as rank %d of %d\n", ep.Rank(), ep.Size())
			if err := dispatch.RunWorker(ep, model, ks, mode); err != nil && err != mp.ErrClosed {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown role %q", *role)
		}
	default:
		log.Fatalf("unknown transport %q", *transport)
	}
	for _, f := range deferred {
		f()
	}
}

var deferred []func()

// reportCl assembles and prints the angular power spectrum from a sweep
// that kept its sources, timing the post-processing: the exact reference
// projection, or the fast engine (shared Bessel tables, and optionally a
// krefine-times finer source-interpolated k grid).
func reportCl(dsw *dispatch.Sweep, tau0, tauRec float64, lmaxcl int, fast bool, krefine int) {
	sw, err := spectra.FromResults(dsw.KValues, dsw.Results, dsw.Tau0)
	if err != nil {
		log.Fatal(err)
	}
	ls := spectra.DefaultLs(lmaxcl)
	prim := spectra.DefaultPrimordial(1.0)
	start := time.Now()
	if krefine > 1 {
		// The same acoustic-resolution guard as the facade: if the evolved
		// grid itself undersamples the sources' oscillation in k, spline
		// refinement would alias it no matter the factor — refuse rather
		// than print silently wrong numbers.
		nc := len(sw.KValues)
		if safe := spectra.SafeKRefine(krefine, krefine*nc, sw.KValues[0], sw.KValues[nc-1], tauRec); safe < krefine {
			log.Printf("krefine %d skipped: the %d-mode sweep undersamples the source oscillation in k; rerun with a larger -nk", krefine, nc)
		} else {
			refined, err := sw.RefineK(krefine*nc, tauRec)
			if err != nil {
				log.Fatal(err)
			}
			sw = refined
		}
	}
	var cl *spectra.ClSpectrum
	if fast {
		cl, err = sw.ClLOSFast(ls, prim, 2.726, tauRec)
	} else {
		cl, err = sw.ClLOS(ls, prim, 2.726, tauRec)
	}
	if err != nil {
		log.Fatal(err)
	}
	engine := "reference"
	if fast {
		engine = "fast-table"
	}
	fmt.Printf("C_l (%s engine, %d quadrature modes): %.3fs\n",
		engine, len(sw.KValues), time.Since(start).Seconds())
	if _, err := cl.NormalizeCOBE(18); err != nil {
		log.Fatalf("COBE normalization failed: %v", err)
	}
	fmt.Printf("  %6s %14s\n", "l", "dT_l [uK]")
	for i, l := range cl.L {
		if i%4 == 0 || i == len(cl.L)-1 {
			fmt.Printf("  %6d %14.2f\n", l, cl.BandPower(i))
		}
	}
}

func report(sw *dispatch.Sweep, st *dispatch.RunStats) {
	fmt.Printf("modes: %d  wallclock: %.2fs  total CPU: %.2fs  efficiency: %.1f%%  rate: %.1f Mflop/s\n",
		st.Modes, st.Wallclock, st.TotalCPU, 100*st.Efficiency, st.FlopRate/1e6)
	for _, w := range st.Workers {
		fmt.Printf("  worker %d: %d modes, %.2fs busy, %.0f Mflop\n",
			w.Rank, w.Modes, w.Seconds, w.Flops/1e6)
	}
	worst := 0.0
	for _, r := range sw.Results {
		if r.MaxConstraintResidual > worst {
			worst = r.MaxConstraintResidual
		}
	}
	fmt.Printf("worst Einstein constraint residual: %.2e\n", worst)
}
