// Command plinger is the parallel driver: the master/worker decomposition
// of Appendix A over either in-process workers (like MPI on one node) or
// TCP across OS processes (like PVM across a cluster; the hub plays the
// PVM daemon). All fan-out goes through the dispatch subsystem.
//
// Single process, n workers (in-process "chan" or strict-FIFO "fifo"):
//
//	plinger -np 8 -nk 64 -lmax 80 -unit1 plinger.txt -unit2 plinger.dat
//
// Across processes: start the master, then connect workers:
//
//	plinger -transport tcp -role master -addr :7070 -np 4 -nk 64
//	plinger -transport tcp -role worker -addr host:7070 -nk 64
//
// The worker must be given the same -nk/-kmin/-kmax so both sides agree on
// the wavenumber table (the paper broadcasts the rest at tag 1).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/mp"
	"plinger/internal/mp/tcpmp"
	"plinger/internal/recomb"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plinger: ")
	var (
		np        = flag.Int("np", 2, "number of workers (master is extra)")
		nk        = flag.Int("nk", 32, "number of wavenumbers")
		kmin      = flag.Float64("kmin", 0.0, "smallest k (0: from lmaxcl grid)")
		kmax      = flag.Float64("kmax", 0.0, "largest k (0: from lmaxcl grid)")
		lmaxcl    = flag.Int("lmaxcl", 200, "target C_l multipole for the k grid")
		lmax      = flag.Int("lmax", 0, "hierarchy cutoff (0: adaptive per k)")
		gaugeName = flag.String("gauge", "synchronous", "gauge: synchronous or newtonian")
		schedule  = flag.String("schedule", "largest-first", "largest-first | input-order | smallest-first")
		transport = flag.String("transport", "chan", "chan | fifo (in-process) or tcp")
		role      = flag.String("role", "master", "tcp role: master or worker")
		addr      = flag.String("addr", "127.0.0.1:7070", "tcp address")
		unit1     = flag.String("unit1", "", "ASCII summary output file")
		unit2     = flag.String("unit2", "", "binary moment output file")
	)
	flag.Parse()

	bg, err := cosmology.New(cosmology.SCDM())
	if err != nil {
		log.Fatal(err)
	}
	th, err := thermo.New(bg, recomb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	model := core.NewModel(bg, th)

	var ks []float64
	if *kmin > 0 && *kmax > *kmin {
		ks = spectra.LogGrid(*kmin, *kmax, *nk)
	} else {
		ks = spectra.ClGrid(*lmaxcl, bg.Tau0(), *nk)
	}
	// -lmax 0 requests the paper's per-k adaptive hierarchy: the global
	// cap covers the largest wavenumber and the dispatcher trims per mode.
	adapt := *lmax == 0
	gl := *lmax
	if gl == 0 {
		gl = spectra.PerKLMax(ks[len(ks)-1], bg.Tau0(), 1<<20)
	}
	gauge := core.Synchronous
	if *gaugeName == "newtonian" {
		gauge = core.ConformalNewtonian
	}
	mode := core.Params{LMax: gl, Gauge: gauge}

	sched, err := dispatch.ParseSchedule(*schedule)
	if err != nil {
		log.Fatal(err)
	}

	openOut := func(name string) io.Writer {
		if name == "" {
			return nil
		}
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		w := bufio.NewWriter(f)
		// flushed on exit
		deferred = append(deferred, func() { w.Flush(); f.Close() })
		return w
	}

	switch *transport {
	case "chan", "fifo":
		d, cleanup, err := dispatch.NewMP(model, *transport, *np)
		if err != nil {
			log.Fatal(err)
		}
		d.Schedule = sched
		d.AdaptLMax = adapt
		d.ASCIIOut = openOut(*unit1)
		d.BinaryOut = openOut(*unit2)
		sw, st, err := d.Run(context.Background(), ks, mode)
		cleanup()
		if err != nil {
			log.Fatal(err)
		}
		report(sw, st)
	case "tcp":
		switch *role {
		case "master":
			hub, err := tcpmp.NewHub(*addr, *np+1)
			if err != nil {
				log.Fatal(err)
			}
			defer hub.Close()
			fmt.Printf("hub listening on %s; waiting for %d workers\n", hub.Addr(), *np)
			ep, err := tcpmp.Connect(hub.Addr())
			if err != nil {
				log.Fatal(err)
			}
			d := &dispatch.MP{
				Model:     model,
				Endpoints: []mp.Endpoint{ep},
				Schedule:  sched,
				AdaptLMax: adapt,
				ASCIIOut:  openOut(*unit1),
				BinaryOut: openOut(*unit2),
				Transport: "tcp",
			}
			sw, st, err := d.Run(context.Background(), ks, mode)
			if err != nil {
				log.Fatal(err)
			}
			report(sw, st)
			fmt.Printf("hub routed %d payload bytes\n", hub.BytesMoved())
		case "worker":
			ep, err := tcpmp.Connect(*addr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("connected as rank %d of %d\n", ep.Rank(), ep.Size())
			if err := dispatch.RunWorker(ep, model, ks, mode); err != nil && err != mp.ErrClosed {
				log.Fatal(err)
			}
		default:
			log.Fatalf("unknown role %q", *role)
		}
	default:
		log.Fatalf("unknown transport %q", *transport)
	}
	for _, f := range deferred {
		f()
	}
}

var deferred []func()

func report(sw *dispatch.Sweep, st *dispatch.RunStats) {
	fmt.Printf("modes: %d  wallclock: %.2fs  total CPU: %.2fs  efficiency: %.1f%%  rate: %.1f Mflop/s\n",
		st.Modes, st.Wallclock, st.TotalCPU, 100*st.Efficiency, st.FlopRate/1e6)
	for _, w := range st.Workers {
		fmt.Printf("  worker %d: %d modes, %.2fs busy, %.0f Mflop\n",
			w.Rank, w.Modes, w.Seconds, w.Flops/1e6)
	}
	worst := 0.0
	for _, r := range sw.Results {
		if r.MaxConstraintResidual > worst {
			worst = r.MaxConstraintResidual
		}
	}
	fmt.Printf("worst Einstein constraint residual: %.2e\n", worst)
}
