// Command plingerd is the spectrum daemon: a long-running HTTP service
// that keeps models, dispatch pools and Bessel tables warm and serves
// cached, request-coalesced C_l and P(k) over JSON (the serving layer of
// internal/serve).
//
// Serve (with startup precompute so default requests are instant hits):
//
//	plingerd -addr :8787 -warm
//
// Ask it for spectra:
//
//	curl -s -X POST localhost:8787/v1/cl -d '{}'
//	curl -s -X POST localhost:8787/v1/cl -d '{"lmax_cl": 200, "qcobe_uk": 18}'
//	curl -s -X POST localhost:8787/v1/pk -d '{"kmax": 0.3, "nk": 40}'
//	curl -s localhost:8787/v1/stats
//
// Observe it:
//
//	curl -s localhost:8787/metrics          # Prometheus text exposition
//	curl -s localhost:8787/v1/trace?last=4  # recent sweep traces with phase spans
//	plingerd -addr :8787 -debug-addr :6060  # net/http/pprof on a side listener
//
// Load-generate against a running daemon (the benchmark client):
//
//	plingerd -loadgen -url http://localhost:8787 -clients 32 -duration 10s
//
// The load generator reports sustained requests/sec and the latency
// distribution, split by cache hits and misses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"plinger/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8787", "listen address")
		workers  = flag.Int("workers", 0, "shared dispatch pool size per model (0: GOMAXPROCS)")
		cache    = flag.Int("cache", 256, "response cache entries")
		models   = flag.Int("models", 4, "model registry entries")
		conc     = flag.Int("concurrent", 2, "max concurrently computing sweeps")
		queue    = flag.Int("queue", 64, "max requests waiting for a compute slot")
		stale    = flag.Int("stalecache", 0, "stale-response cache entries, serving last known good answers on failed or timed-out recomputes (0: 4x -cache)")
		lmaxCl   = flag.Int("lmaxcl", 150, "default C_l multipole cap")
		nk       = flag.Int("nk", 130, "default C_l wavenumber grid")
		krefine  = flag.Int("krefine", 6, "default coarse-to-fine refinement factor")
		pknk     = flag.Int("pknk", 40, "default P(k) grid size")
		lspline  = flag.Bool("lspline", true, "spline-in-l projection for non-exact C_l requests")
		kbatch   = flag.Int("kbatch", 4, "lockstep k-mode batch size for non-exact C_l requests (0/1: scalar)")
		warm     = flag.Bool("warm", false, "precompute the default products before listening")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		slowMS   = flag.Int("slow-ms", 2000, "log requests slower than this as warnings")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this side address (empty: disabled)")

		loadgen  = flag.Bool("loadgen", false, "run as a load-generating client instead of a server")
		url      = flag.String("url", "http://localhost:8787", "loadgen: daemon base URL")
		clients  = flag.Int("clients", 32, "loadgen: concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "loadgen: run length")
		body     = flag.String("body", "{}", "loadgen: JSON request body for /v1/cl")
	)
	flag.Parse()

	logger := newLogger(*logLevel)

	if *loadgen {
		rep, err := serve.RunLoadgen(*url, *clients, *duration, *body)
		if err != nil {
			logger.Error("loadgen failed", "err", err)
			os.Exit(1)
		}
		printLoadReport(os.Stdout, rep)
		return
	}

	svc := serve.New(serve.Options{
		Defaults: serve.Defaults{LMaxCl: *lmaxCl, NK: *nk, KRefine: *krefine, PkNK: *pknk,
			LSpline: *lspline, KBatch: *kbatch},
		Workers:        *workers,
		CacheSize:      *cache,
		ModelCacheSize: *models,
		MaxConcurrent:  *conc,
		MaxQueue:       *queue,
		StaleCacheSize: *stale,
		Logger:         logger,
		SlowRequest:    time.Duration(*slowMS) * time.Millisecond,
	})
	defer svc.Close()
	logger.Info("starting", "service", fmt.Sprint(svc))

	if *debug != "" {
		go func() {
			// pprof rides a side listener so profiling never competes with
			// (or exposes itself on) the public API address.
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "addr", *debug)
			if err := http.ListenAndServe(*debug, mux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	if *warm {
		cls, pks := serve.DefaultWarmGrid(svc.Defaults())
		rep, err := svc.Warm(context.Background(), cls, pks)
		if err != nil {
			logger.Error("warmup failed", "err", err)
			os.Exit(1)
		}
		logger.Info("warm", "requests", rep.Requests, "elapsed_s", rep.ElapsedS, "sweeps", rep.Sweeps)
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = server.Shutdown(ctx)
	}
}

// newLogger builds the daemon's structured key=value logger.
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

func printLoadReport(w *os.File, rep *serve.LoadReport) {
	buf, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintln(w, string(buf))
	fmt.Fprintf(w, "%.0f req/s over %.1fs with %d clients (p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms; %d hits, %d misses, %d coalesced, %d errors)\n",
		rep.RequestsSec, rep.Seconds, rep.Clients, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS,
		rep.Hits, rep.Misses, rep.Coalesced, rep.Errors)
}
