// Command plingerd is the spectrum daemon: a long-running HTTP service
// that keeps models, dispatch pools and Bessel tables warm and serves
// cached, request-coalesced C_l and P(k) over JSON (the serving layer of
// internal/serve).
//
// Serve (with startup precompute so default requests are instant hits):
//
//	plingerd -addr :8787 -warm
//
// Ask it for spectra:
//
//	curl -s -X POST localhost:8787/v1/cl -d '{}'
//	curl -s -X POST localhost:8787/v1/cl -d '{"lmax_cl": 200, "qcobe_uk": 18}'
//	curl -s -X POST localhost:8787/v1/pk -d '{"kmax": 0.3, "nk": 40}'
//	curl -s localhost:8787/v1/stats
//
// Observe it:
//
//	curl -s localhost:8787/metrics          # Prometheus text exposition
//	curl -s localhost:8787/v1/trace?last=4  # recent sweep traces with phase spans
//	plingerd -addr :8787 -debug-addr :6060  # net/http/pprof on a side listener
//
// Load-generate against a running daemon (the benchmark client):
//
//	plingerd -loadgen -url http://localhost:8787 -clients 32 -duration 10s
//
// The load generator reports sustained requests/sec and the latency
// distribution, split by cache hits and misses.
//
// Compute over a supervised multi-process worker farm instead of the
// in-process pool (spawns plingerw children, restarts crashes, re-admits
// rejoining workers; /v1/stats grows a per-host roster):
//
//	plingerd -addr :8787 -farm 127.0.0.1:9041 -farm-workers 4
//
// Remote plingerw processes dial the same -farm address; SIGTERM drains
// the farm and finishes in-flight requests (-drain-timeout bounds it, a
// second signal forces exit).
//
// Shard the response cache across a replica fleet (each daemon gets the
// full fleet list; every cache key has one owning replica, misses for
// remote-owned keys are fetched from the owner, and any peer failure
// degrades to local compute — see internal/cluster):
//
//	plingerd -addr :8787 -advertise http://host-a:8787 \
//	    -peers http://host-a:8787,http://host-b:8787,http://host-c:8787
//
// The loadgen's -url accepts the same comma-separated fleet list and
// spreads clients round-robin across the nodes.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"plinger/internal/cluster"
	"plinger/internal/farm"
	"plinger/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8787", "listen address")
		workers  = flag.Int("workers", 0, "shared dispatch pool size per model (0: GOMAXPROCS)")
		cache    = flag.Int("cache", 256, "response cache entries")
		models   = flag.Int("models", 4, "model registry entries")
		conc     = flag.Int("concurrent", 2, "max concurrently computing sweeps")
		queue    = flag.Int("queue", 64, "max requests waiting for a compute slot")
		stale    = flag.Int("stalecache", 0, "stale-response cache entries, serving last known good answers on failed or timed-out recomputes (0: 4x -cache)")
		lmaxCl   = flag.Int("lmaxcl", 150, "default C_l multipole cap")
		nk       = flag.Int("nk", 130, "default C_l wavenumber grid")
		krefine  = flag.Int("krefine", 6, "default coarse-to-fine refinement factor")
		pknk     = flag.Int("pknk", 40, "default P(k) grid size")
		lspline  = flag.Bool("lspline", true, "spline-in-l projection for non-exact C_l requests")
		kbatch   = flag.Int("kbatch", 4, "lockstep k-mode batch size for non-exact C_l requests (0/1: scalar)")
		warm     = flag.Bool("warm", false, "precompute the default products before listening")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		slowMS   = flag.Int("slow-ms", 2000, "log requests slower than this as warnings")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this side address (empty: disabled)")

		peers       = flag.String("peers", "", "comma-separated fleet list of replica base URLs for sharded-cache peering (include this node; empty: single-node)")
		advertise   = flag.String("advertise", "", "this node's base URL as spelled in every replica's -peers list (required with -peers)")
		peerTimeout = flag.Duration("peer-timeout", 2*time.Second, "per-hop timeout for peer cache fetches and back-fills")

		farmAddr    = flag.String("farm", "", "run sweeps over a worker farm listening on this address for plingerw workers (e.g. :9041; empty: in-process pools unless -farm-workers > 0)")
		farmWorkers = flag.Int("farm-workers", 0, "plingerw processes to spawn and supervise locally")
		farmBin     = flag.String("farm-worker-bin", "", "plingerw binary to spawn (default: plingerw next to this executable)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight sweeps and farm drain")

		loadgen  = flag.Bool("loadgen", false, "run as a load-generating client instead of a server")
		url      = flag.String("url", "http://localhost:8787", "loadgen: daemon base URL")
		clients  = flag.Int("clients", 32, "loadgen: concurrent clients")
		duration = flag.Duration("duration", 10*time.Second, "loadgen: run length")
		body     = flag.String("body", "{}", "loadgen: JSON request body for /v1/cl")
	)
	flag.Parse()

	logger := newLogger(*logLevel)

	if *loadgen {
		rep, err := serve.RunLoadgen(*url, *clients, *duration, *body)
		if err != nil {
			logger.Error("loadgen failed", "err", err)
			os.Exit(1)
		}
		printLoadReport(os.Stdout, rep)
		return
	}

	// The farm, when configured, is the daemon's: started before the
	// service (models route over it from the first request) and drained
	// after the HTTP server has stopped taking traffic.
	var fleet *farm.Supervisor
	if *farmAddr != "" || *farmWorkers > 0 {
		bin := *farmBin
		if bin == "" && *farmWorkers > 0 {
			exe, err := os.Executable()
			if err != nil {
				logger.Error("cannot locate plingerw next to the daemon", "err", err)
				os.Exit(1)
			}
			bin = filepath.Join(filepath.Dir(exe), "plingerw")
		}
		addr := *farmAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		f, err := farm.New(farm.Options{
			Addr:      addr,
			Workers:   *farmWorkers,
			WorkerBin: bin,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			logger.Error("farm startup failed", "err", err)
			os.Exit(1)
		}
		fleet = f
		logger.Info("farm listening", "addr", f.Addr(), "spawned_workers", *farmWorkers)
	}

	// The peering, like the farm, is the daemon's: built before the
	// service and closed after the HTTP server has stopped taking traffic.
	var peering *cluster.Peering
	if *peers != "" {
		if *advertise == "" {
			logger.Error("-peers requires -advertise (this node's spelling in the fleet list)")
			os.Exit(1)
		}
		p, err := cluster.New(cluster.Options{
			Self:       *advertise,
			Peers:      strings.Split(*peers, ","),
			HopTimeout: *peerTimeout,
			Logf: func(format string, args ...any) {
				logger.Info(fmt.Sprintf(format, args...))
			},
		})
		if err != nil {
			logger.Error("cluster startup failed", "err", err)
			os.Exit(1)
		}
		peering = p
		defer peering.Close()
		logger.Info("cluster peering up", "self", p.Self(), "members", len(p.Members()))
	}

	svc := serve.New(serve.Options{
		Defaults: serve.Defaults{LMaxCl: *lmaxCl, NK: *nk, KRefine: *krefine, PkNK: *pknk,
			LSpline: *lspline, KBatch: *kbatch},
		Workers:        *workers,
		Farm:           fleet,
		Cluster:        peering,
		CacheSize:      *cache,
		ModelCacheSize: *models,
		MaxConcurrent:  *conc,
		MaxQueue:       *queue,
		StaleCacheSize: *stale,
		Logger:         logger,
		SlowRequest:    time.Duration(*slowMS) * time.Millisecond,
	})
	defer svc.Close()
	logger.Info("starting", "service", fmt.Sprint(svc))

	if *debug != "" {
		go func() {
			// pprof rides a side listener so profiling never competes with
			// (or exposes itself on) the public API address.
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			logger.Info("pprof listening", "addr", *debug)
			if err := http.ListenAndServe(*debug, mux); err != nil {
				logger.Error("pprof listener failed", "err", err)
			}
		}()
	}

	if *warm {
		cls, pks := serve.DefaultWarmGrid(svc.Defaults())
		rep, err := svc.Warm(context.Background(), cls, pks)
		if err != nil {
			logger.Error("warmup failed", "err", err)
			os.Exit(1)
		}
		logger.Info("warm", "requests", rep.Requests, "elapsed_s", rep.ElapsedS, "sweeps", rep.Sweeps)
	}

	server := &http.Server{Addr: *addr, Handler: svc.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String(), "budget", drainWait.String())
		// A second signal is the operator overruling the graceful path.
		go func() {
			s := <-sig
			logger.Error("second signal: forcing exit", "signal", s.String())
			os.Exit(1)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		// Shutdown waits out in-flight requests — and with them their
		// sweeps — before returning; its error is the difference between a
		// clean stop and work cut off by the budget, so it is logged, not
		// discarded.
		if err := server.Shutdown(ctx); err != nil {
			logger.Error("http shutdown incomplete", "err", err)
		}
		if fleet != nil {
			if err := fleet.Drain(ctx); err != nil {
				logger.Error("farm drain incomplete", "err", err)
			} else {
				logger.Info("farm drained")
			}
		}
	}
}

// newLogger builds the daemon's structured key=value logger.
func newLogger(level string) *slog.Logger {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
}

func printLoadReport(w *os.File, rep *serve.LoadReport) {
	buf, _ := json.MarshalIndent(rep, "", "  ")
	fmt.Fprintln(w, string(buf))
	fmt.Fprintf(w, "%.0f req/s over %.1fs with %d clients (p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, max %.2f ms; %d hits, %d misses, %d coalesced, %d errors)\n",
		rep.RequestsSec, rep.Seconds, rep.Clients, rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS,
		rep.Hits, rep.Misses, rep.Coalesced, rep.Errors)
}
