package plinger

// The benchmark harness regenerates every quantitative artifact of the
// paper's evaluation:
//
//	BenchmarkSerialNodeRate      - Section 3/5.1 single-node flop rates
//	BenchmarkFig1Scaling         - Figure 1: wallclock/CPU vs processors
//	BenchmarkFig2SpectrumLOS     - Figure 2 pipeline (line-of-sight engine)
//	BenchmarkFig2BruteForce      - Figure 2 by the paper's brute-force method
//	BenchmarkFig3SkyMap          - Figure 3 map synthesis
//	BenchmarkPsiMovie            - the psi(x, tau) movie frames
//	BenchmarkTransportComparison - Section 4: "choice of library has no effect"
//	BenchmarkScheduleOrder       - Section 5.2: largest-k-first idle-time trick
//	BenchmarkIntegrators         - Section 2: DVERK vs the RKF45 baseline
//	BenchmarkMessageOverhead     - Section 4: message bytes vs compute time
//
// Rates are reported as custom metrics (Mflop/s, efficiency %, bytes/mode)
// so `go test -bench . -benchmem` prints the full table.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"plinger/internal/core"
	"plinger/internal/cosmology"
	"plinger/internal/dispatch"
	"plinger/internal/ode"
	"plinger/internal/recomb"
	"plinger/internal/sky"
	"plinger/internal/spectra"
	"plinger/internal/thermo"
)

var (
	benchOnce  sync.Once
	benchModel *Model
	benchCore  *core.Model
	benchErr   error
)

func getBenchModel(b *testing.B) (*Model, *core.Model) {
	b.Helper()
	benchOnce.Do(func() {
		benchModel, benchErr = New(SCDM())
		if benchErr != nil {
			return
		}
		bg, err := cosmology.New(cosmology.SCDM())
		if err != nil {
			benchErr = err
			return
		}
		th, err := thermo.New(bg, recomb.Options{})
		if err != nil {
			benchErr = err
			return
		}
		benchCore = core.NewModel(bg, th)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchModel, benchCore
}

// BenchmarkSerialNodeRate measures the single-worker throughput on one
// k mode, the analogue of the paper's per-node numbers (570 Mflop on a C90
// vector node, 40-58 Mflop on an SP2 Power2, 15 Mflop on a T3D node; this
// Go code on a modern core lands far above all three).
func BenchmarkSerialNodeRate(b *testing.B) {
	m, _ := getBenchModel(b)
	b.ReportAllocs()
	var flops, secs float64
	for i := 0; i < b.N; i++ {
		res, err := m.EvolveMode(ModeOptions{K: 0.05, LMax: 120})
		if err != nil {
			b.Fatal(err)
		}
		flops += res.Flops
		secs += res.Seconds
	}
	if secs > 0 {
		b.ReportMetric(flops/secs/1e6, "Mflop/s")
	}
}

// BenchmarkFig1Scaling runs the fixed Figure 1 workload with growing worker
// pools and reports wallclock, parallel efficiency and aggregate rate.
func BenchmarkFig1Scaling(b *testing.B) {
	m, _ := getBenchModel(b)
	var ks []float64
	for i := 0; i < 16; i++ {
		ks = append(ks, 0.002+0.0025*float64(i))
	}
	for _, np := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("np=%d", np), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := m.RunParallel(ParallelOptions{KValues: ks, Workers: np, LMax: 60})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*run.Efficiency, "eff%")
				b.ReportMetric(run.FlopRate/1e6, "Mflop/s")
			}
		})
	}
}

// BenchmarkFig2SpectrumLOS runs the reduced Figure 2 pipeline with the
// fast line-of-sight engine: ODE evolutions on a coarse k grid with
// sources splined onto the full 130-point quadrature grid (KRefine), and
// the projection against the shared spherical-Bessel kernel tables
// (FastLOS). Same LMaxCl/NK as the reference benchmark below; the fast
// spectrum matches it to < 1e-3 relative (TestFastSpectrumMatchesReference).
func BenchmarkFig2SpectrumLOS(b *testing.B) {
	m, _ := getBenchModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: 150, NK: 130, FastLOS: true, KRefine: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.NormalizeCOBE(18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2SpectrumLOSReference is the exact reference pipeline at the
// same settings: every wavenumber evolved, kernels by recurrence.
func BenchmarkFig2SpectrumLOSReference(b *testing.B) {
	m, _ := getBenchModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := m.ComputeSpectrum(SpectrumOptions{LMaxCl: 150, NK: 130})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.NormalizeCOBE(18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2BruteForce uses the paper's method: full hierarchy per k,
// C_l read directly off the final moments (at reduced resolution).
func BenchmarkFig2BruteForce(b *testing.B) {
	m, _ := getBenchModel(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := m.ComputeSpectrum(SpectrumOptions{
			LMaxCl: 40, NK: 70, Method: "brute", Ls: []int{2, 5, 10, 20, 40},
		})
		if err != nil {
			b.Fatal(err)
		}
		if spec.Cl[0] <= 0 {
			b.Fatal("bad spectrum")
		}
	}
}

// BenchmarkFig3SkyMap synthesizes the half-degree flat patch of Figure 3.
func BenchmarkFig3SkyMap(b *testing.B) {
	var ls []int
	var cl []float64
	for l := 2; l <= 1024; l += 4 {
		ls = append(ls, l)
		cl = append(cl, 1e-10/float64(l*(l+1)))
	}
	spec := &sky.Spectrum{L: ls, Cl: cl, TCMB: 2.726}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := sky.FlatPatch(spec, 128, 32, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, mx, _ := mp.Stats(); mx == 0 {
			b.Fatal("empty map")
		}
	}
}

// BenchmarkPsiMovie builds the potential-movie realization and renders
// frames through recombination.
func BenchmarkPsiMovie(b *testing.B) {
	_, cm := getBenchModel(b)
	b.ReportAllocs()
	ks := spectra.LogGrid(0.05, 2.0, 12)
	sweep, err := spectra.RunSweep(cm, core.Params{
		LMax: 30, Gauge: core.ConformalNewtonian, KeepSources: true, TauEnd: 250,
	}, ks, 0, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		field, err := sky.NewPsiField(ks, sweep.Results, 64, 100, 1.0, 7)
		if err != nil {
			b.Fatal(err)
		}
		for f := 0; f < 10; f++ {
			if _, err := field.Frame(5 + 25*float64(f)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func runWorkload(b *testing.B, cm *core.Model, ks []float64, sched dispatch.Schedule, transport string) *dispatch.RunStats {
	b.Helper()
	mode := core.Params{LMax: 40, Gauge: core.Synchronous}
	d, cleanup, err := dispatch.NewMP(cm, transport, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer cleanup()
	d.Schedule = sched
	_, st, err := d.Run(context.Background(), ks, mode)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTransportComparison reproduces the Section 4 claim that the
// message-passing library does not affect throughput: the same workload
// over the in-process, strict-FIFO (MPL-style) and TCP (PVM-style)
// transports.
func BenchmarkTransportComparison(b *testing.B) {
	_, cm := getBenchModel(b)
	ks := []float64{0.004, 0.01, 0.02, 0.03, 0.045, 0.06, 0.015, 0.008}
	for _, tr := range []string{"chan", "fifo", "tcp"} {
		b.Run(tr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := runWorkload(b, cm, ks, dispatch.LargestFirst, tr)
				b.ReportMetric(100*st.Efficiency, "eff%")
			}
		})
	}
}

// BenchmarkScheduleOrder is the Section 5.2 ablation: handing out the
// largest (most expensive) wavenumbers first minimizes the end-of-run idle
// tail relative to naive orders.
func BenchmarkScheduleOrder(b *testing.B) {
	_, cm := getBenchModel(b)
	// A strongly heterogeneous workload: one expensive mode, many cheap.
	ks := []float64{0.001, 0.002, 0.003, 0.004, 0.005, 0.006, 0.007, 0.09}
	for _, sched := range []dispatch.Schedule{dispatch.LargestFirst, dispatch.InputOrder, dispatch.SmallestFirst} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := runWorkload(b, cm, ks, sched, "chan")
				b.ReportMetric(100*st.Efficiency, "eff%")
			}
		})
	}
}

// BenchmarkIntegrators compares the paper's DVERK (Verner 6(5)) against the
// Fehlberg 4(5) baseline on the same mode and tolerance.
func BenchmarkIntegrators(b *testing.B) {
	_, cm := getBenchModel(b)
	b.ReportAllocs()
	for _, mk := range []struct {
		name string
		in   func() ode.Integrator
	}{
		{"DVERK", func() ode.Integrator { return ode.NewDVERK(1e-6, 1e-12) }},
		{"RKF45", func() ode.Integrator { return ode.NewRKF45(1e-6, 1e-12) }},
	} {
		b.Run(mk.name, func(b *testing.B) {
			var evals int
			for i := 0; i < b.N; i++ {
				res, err := cm.Evolve(core.Params{
					K: 0.05, LMax: 60, Gauge: core.Synchronous, Integrator: mk.in(),
				})
				if err != nil {
					b.Fatal(err)
				}
				evals += res.Stats.Evals
			}
			b.ReportMetric(float64(evals)/float64(b.N), "evals/mode")
		})
	}
}

// BenchmarkMessageOverhead quantifies the Section 4 observation that
// communication is negligible: bytes moved per mode against per-mode
// compute time (the paper: 150 bytes to 80 kbyte per mode, minutes of CPU).
func BenchmarkMessageOverhead(b *testing.B) {
	m, _ := getBenchModel(b)
	b.ReportAllocs()
	ks := []float64{0.005, 0.015, 0.03, 0.05}
	for i := 0; i < b.N; i++ {
		run, err := m.RunParallel(ParallelOptions{KValues: ks, Workers: 2, LMax: 80})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(run.BytesMoved)/float64(len(ks)), "bytes/mode")
		b.ReportMetric(run.TotalCPU/float64(len(ks))*1e3, "ms-cpu/mode")
	}
}
